//! A minimal JSON value, parser, and pretty-printer.
//!
//! The workspace's `serde` is an offline no-op shim (the build environment
//! has no crates.io access), so the scenario subsystem carries its own
//! small JSON layer: insertion-ordered objects, exact `u64`/`i64`
//! round-tripping (seeds must survive serialization bit-for-bit, which
//! `f64`-only number models cannot guarantee), and positioned parse
//! errors.

use std::fmt;

/// A JSON number. Integers keep their exact value; anything with a
/// fraction or exponent is an `f64` (printed via the shortest
/// round-trippable representation).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Num {
    /// Non-negative integer (covers every seed and count).
    U(u64),
    /// Negative integer.
    I(i64),
    /// Everything else.
    F(f64),
}

impl Num {
    /// The value as an `f64` (lossy for huge integers).
    pub fn as_f64(&self) -> f64 {
        match *self {
            Num::U(v) => v as f64,
            Num::I(v) => v as f64,
            Num::F(v) => v,
        }
    }

    /// The value as a `u64`, if it is exactly a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Num::U(v) => Some(v),
            Num::I(v) => u64::try_from(v).ok(),
            Num::F(v) if v >= 0.0 && v.fract() == 0.0 && v <= u64::MAX as f64 => Some(v as u64),
            Num::F(_) => None,
        }
    }
}

/// A parsed JSON value. Object keys keep insertion order so specs
/// round-trip in a stable, diffable layout.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number.
    Num(Num),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object (insertion-ordered key/value pairs).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_num(&self) -> Option<Num> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Serializes with 2-space indentation and a trailing newline.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    /// Serializes on a single line with no whitespace — the JSONL form
    /// the scenario service streams (one document per line, so embedded
    /// newlines would corrupt the framing; the string escaper below
    /// always encodes them as `\n`).
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    Json::Str(k.clone()).write_compact(out);
                    out.push(':');
                    v.write_compact(out);
                }
                out.push('}');
            }
            // Scalars format identically in both modes.
            other => other.write(out, 0),
        }
    }

    fn write(&self, out: &mut String, indent: usize) {
        use fmt::Write as _;
        let pad = |out: &mut String, n: usize| {
            for _ in 0..n {
                out.push_str("  ");
            }
        };
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Num(Num::U(v)) => {
                let _ = write!(out, "{v}");
            }
            Json::Num(Num::I(v)) => {
                let _ = write!(out, "{v}");
            }
            Json::Num(Num::F(v)) => {
                if v.is_finite() {
                    // `{:?}` is the shortest representation that parses
                    // back to the identical bits.
                    let _ = write!(out, "{v:?}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\r' => out.push_str("\\r"),
                        '\t' => out.push_str("\\t"),
                        c if (c as u32) < 0x20 => {
                            let _ = write!(out, "\\u{:04x}", c as u32);
                        }
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    pad(out, indent + 1);
                    item.write(out, indent + 1);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                pad(out, indent);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (k, v)) in fields.iter().enumerate() {
                    pad(out, indent + 1);
                    Json::Str(k.clone()).write(out, indent + 1);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                    if i + 1 < fields.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                pad(out, indent);
                out.push('}');
            }
        }
    }
}

/// A positioned parse failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// 1-based line of the offending byte.
    pub line: usize,
    /// 1-based column of the offending byte.
    pub col: usize,
    /// What went wrong.
    pub msg: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "json parse error at {}:{}: {}",
            self.line, self.col, self.msg
        )
    }
}

impl std::error::Error for JsonError {}

/// Parses a complete JSON document (one value, optional surrounding
/// whitespace).
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing data after the document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: impl Into<String>) -> JsonError {
        let (mut line, mut col) = (1, 1);
        for &b in &self.bytes[..self.pos.min(self.bytes.len())] {
            if b == b'\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
        }
        JsonError {
            line,
            col,
            msg: msg.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(format!("unexpected character '{}'", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex =
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            s.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("bad \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = &self.bytes[self.pos..];
                    let s_rest =
                        std::str::from_utf8(rest).map_err(|_| self.err("invalid utf-8"))?;
                    // `peek` returned a byte, so the validated remainder
                    // holds at least one scalar.
                    #[allow(clippy::unwrap_used)]
                    let c = s_rest.chars().next().unwrap();
                    s.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        // Only ASCII digits, signs, dots, and exponents were consumed.
        #[allow(clippy::unwrap_used)]
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !is_float {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Json::Num(Num::U(v)));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Json::Num(Num::I(v)));
            }
        }
        text.parse::<f64>()
            .map(|v| Json::Num(Num::F(v)))
            .map_err(|_| self.err(format!("bad number '{text}'")))
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            if fields.iter().any(|(k, _)| *k == key) {
                return Err(self.err(format!("duplicate key \"{key}\"")));
            }
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(parse("42").unwrap(), Json::Num(Num::U(42)));
        assert_eq!(parse("-7").unwrap(), Json::Num(Num::I(-7)));
        assert_eq!(parse("2.5e-3").unwrap(), Json::Num(Num::F(0.0025)));
        assert_eq!(
            parse("\"a\\nb\\u0041\"").unwrap(),
            Json::Str("a\nbA".to_string())
        );
    }

    #[test]
    fn u64_seeds_round_trip_exactly() {
        for v in [0u64, 1, u64::MAX, u64::MAX - 1, 1 << 53, (1 << 53) + 1] {
            let s = Json::Num(Num::U(v)).to_string_pretty();
            assert_eq!(parse(s.trim()).unwrap(), Json::Num(Num::U(v)), "{v}");
        }
    }

    #[test]
    fn floats_round_trip_exactly() {
        for v in [0.9, 0.005, 1.0 / 3.0, 1e-12, 123456.789] {
            let s = Json::Num(Num::F(v)).to_string_pretty();
            let Json::Num(n) = parse(s.trim()).unwrap() else {
                panic!()
            };
            assert_eq!(n.as_f64(), v, "{v}");
        }
    }

    #[test]
    fn object_order_and_nesting_round_trip() {
        let doc = Json::Obj(vec![
            ("zeta".into(), Json::Num(Num::U(1))),
            (
                "alpha".into(),
                Json::Arr(vec![Json::Null, Json::Bool(false)]),
            ),
            (
                "nested".into(),
                Json::Obj(vec![("k".into(), Json::Str("v \"q\"".into()))]),
            ),
            ("empty_arr".into(), Json::Arr(vec![])),
            ("empty_obj".into(), Json::Obj(vec![])),
        ]);
        let text = doc.to_string_pretty();
        assert_eq!(parse(&text).unwrap(), doc);
        // Insertion order is preserved verbatim.
        assert!(text.find("zeta").unwrap() < text.find("alpha").unwrap());
    }

    #[test]
    fn errors_carry_positions() {
        let e = parse("{\n  \"a\": 1,\n  \"a\": 2\n}").unwrap_err();
        assert!(e.msg.contains("duplicate"));
        assert_eq!(e.line, 3);
        let e = parse("[1, 2,]").unwrap_err();
        assert!(e.line == 1 && e.col >= 7, "{e}");
        assert!(parse("").is_err());
        assert!(parse("{\"a\" 1}").is_err());
        assert!(parse("123 456").unwrap_err().msg.contains("trailing"));
    }

    #[test]
    fn accessors() {
        let doc = parse("{\"s\": \"x\", \"n\": 3, \"b\": true, \"a\": [1]}").unwrap();
        assert_eq!(doc.get("s").and_then(Json::as_str), Some("x"));
        assert_eq!(
            doc.get("n").and_then(Json::as_num).unwrap().as_u64(),
            Some(3)
        );
        assert_eq!(doc.get("b").and_then(Json::as_bool), Some(true));
        assert_eq!(doc.get("a").and_then(Json::as_arr).unwrap().len(), 1);
        assert!(doc.get("missing").is_none());
    }
}
