//! Scenario-level checkpoint/resume: run a validated spec while
//! streaming engine snapshots into a sink, and resume a run from any of
//! those snapshots under a freshly rebuilt environment.
//!
//! The contract mirrors the engine's (`wormsim::engine` snapshot
//! module): a resumed replication finishes **byte-identically** to its
//! uninterrupted twin — same outcome, same digest ledger suffix — for
//! every routing arm, fault arm, and completion hook a spec can
//! describe. Everything immutable (topology, routing tables, fault
//! schedule, hook shape) is rebuilt deterministically from the spec;
//! only the engine's dynamic state travels in the snapshot bytes.

use crate::run::{run_once_mode, RunMode};
use crate::spec::{ScenarioSpec, SpecError};
use desim::{Duration, QueueKind};
use std::sync::{Arc, Mutex};
use wormsim::{fnv1a, CheckpointSink, SimOutcome, SnapWriter};

/// One checkpointed replication: the finished outcome plus every
/// snapshot taken along the way, `(sim_time_ns, sealed bytes)` in
/// checkpoint order.
#[derive(Debug)]
pub struct CheckpointedRun {
    /// The uninterrupted run's outcome.
    pub outcome: SimOutcome,
    /// Every checkpoint the run produced, time-ordered.
    pub checkpoints: Vec<(u64, Vec<u8>)>,
}

/// Reads a shared sink cell after the run, tolerating a poisoned lock
/// (the engine never panics while holding it, but the lint gate wants
/// the honest path spelled out).
fn drain<T: Default>(cell: Arc<Mutex<T>>) -> T {
    match cell.lock() {
        Ok(mut g) => std::mem::take(&mut *g),
        Err(p) => std::mem::take(&mut *p.into_inner()),
    }
}

/// Runs one replication with a keep-everything checkpoint sink at the
/// given cadence. `queue` overrides the spec's event-queue choice, as
/// in [`crate::run::run_once`].
pub fn run_once_checkpointed(
    spec: &ScenarioSpec,
    rep: u32,
    queue: Option<QueueKind>,
    every_ns: u64,
) -> Result<CheckpointedRun, SpecError> {
    if every_ns == 0 {
        return Err(SpecError::ZeroCheckpointCadence);
    }
    let (sink, kept) = CheckpointSink::keep_all();
    let mode = RunMode::Checkpoint {
        every: Duration::from_ns(every_ns),
        sink,
    };
    let (outcome, _, _) = run_once_mode(spec, rep, queue, mode)?;
    Ok(CheckpointedRun {
        outcome,
        checkpoints: drain(kept),
    })
}

/// Resumes one replication from snapshot bytes taken by an earlier run
/// of the *same spec and replication* (any sink: keep-all, latest, or a
/// journal file) and runs it to completion. Corrupt bytes, version
/// skew, or a mismatched spec surface as [`SpecError::Snapshot`].
pub fn resume_once(
    spec: &ScenarioSpec,
    rep: u32,
    queue: Option<QueueKind>,
    bytes: &[u8],
) -> Result<SimOutcome, SpecError> {
    run_once_mode(spec, rep, queue, RunMode::Resume { bytes }).map(|(out, _, _)| out)
}

/// A canonical digest over everything a run *means*: final clock,
/// termination verdict, engine counters, per-message completion times
/// and failures, per-channel crossing counts, and the trace length.
/// Two runs with equal digests delivered the same messages at the same
/// instants over the same channels — the equality the golden corpus and
/// the divergence bisector both pin.
pub fn outcome_digest(out: &SimOutcome) -> u64 {
    let mut w = SnapWriter::with_capacity(256 + 32 * out.messages.len());
    w.put_u64(out.end_time.as_ns());
    w.put_bool(out.quiescent);
    w.put_bool(out.deadlock.is_some());
    w.put_bool(out.error.is_some());
    let c = &out.counters;
    for v in [
        c.events,
        c.wire_transfers,
        c.bubbles_created,
        c.flits_delivered,
        c.messages_completed,
        c.acquisitions,
        c.seg_lookups,
        c.messages_torn_down,
        c.messages_unreachable,
        c.links_killed,
    ] {
        w.put_u64(v);
    }
    w.put_len(out.messages.len());
    for m in &out.messages {
        w.put_u64(m.spec.tag);
        w.put_opt_u64(m.completed_at.map(|t| t.as_ns()));
        w.put_len(m.dest_done_at.len());
        for d in &m.dest_done_at {
            w.put_opt_u64(d.map(|t| t.as_ns()));
        }
        w.put_bool(m.failure.is_some());
        if let Some(f) = &m.failure {
            w.put_u64(f.at.as_ns());
        }
    }
    w.put_len(out.channel_crossings.len());
    for x in &out.channel_crossings {
        w.put_u64(*x);
    }
    w.put_len(out.fault_times.len());
    for t in &out.fault_times {
        w.put_u64(t.as_ns());
    }
    w.put_len(out.trace.events.len());
    fnv1a(w.as_bytes())
}
