//! Loading a directory of `*.scenario.json` files — the committed
//! scenario corpus that `scenario_run` executes and the golden corpus
//! suite pins.

use crate::spec::{ScenarioSpec, SpecError};
use std::fmt;
use std::path::{Path, PathBuf};

/// The filename suffix a corpus file must carry.
pub const SCENARIO_SUFFIX: &str = ".scenario.json";

/// Why a corpus directory could not be loaded.
#[derive(Debug)]
pub enum CorpusError {
    /// Filesystem failure (directory missing, unreadable file, ...).
    Io {
        /// The offending path.
        path: PathBuf,
        /// The underlying error.
        error: std::io::Error,
    },
    /// A file parsed or validated wrong.
    Bad {
        /// The offending file.
        path: PathBuf,
        /// The typed reason.
        error: SpecError,
    },
    /// Two files declare the same scenario name (reports would collide).
    DuplicateName {
        /// The scenario name.
        name: String,
    },
}

impl fmt::Display for CorpusError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CorpusError::Io { path, error } => write!(f, "{}: {error}", path.display()),
            CorpusError::Bad { path, error } => write!(f, "{}: {error}", path.display()),
            CorpusError::DuplicateName { name } => {
                write!(f, "two corpus files both declare scenario \"{name}\"")
            }
        }
    }
}

impl std::error::Error for CorpusError {}

/// Loads, decodes, and validates every `*.scenario.json` under `dir`,
/// sorted by filename (deterministic corpus order).
pub fn load_dir(dir: &Path) -> Result<Vec<(PathBuf, ScenarioSpec)>, CorpusError> {
    let entries = std::fs::read_dir(dir).map_err(|error| CorpusError::Io {
        path: dir.to_path_buf(),
        error,
    })?;
    let mut paths: Vec<PathBuf> = entries
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.ends_with(SCENARIO_SUFFIX))
        })
        .collect();
    paths.sort();
    let mut out = Vec::with_capacity(paths.len());
    let mut names = std::collections::HashSet::new();
    for path in paths {
        let text = std::fs::read_to_string(&path).map_err(|error| CorpusError::Io {
            path: path.clone(),
            error,
        })?;
        let spec = ScenarioSpec::from_json(&text).map_err(|error| CorpusError::Bad {
            path: path.clone(),
            error,
        })?;
        spec.validate().map_err(|error| CorpusError::Bad {
            path: path.clone(),
            error,
        })?;
        if !names.insert(spec.name.clone()) {
            return Err(CorpusError::DuplicateName { name: spec.name });
        }
        out.push((path, spec));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loads_sorted_and_rejects_bad_files() {
        let dir = std::env::temp_dir().join("spam_scenario_corpus_test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let b = ScenarioSpec::example("b-scenario");
        let a = ScenarioSpec::example("a-scenario");
        std::fs::write(dir.join("b.scenario.json"), b.to_json_string()).unwrap();
        std::fs::write(dir.join("a.scenario.json"), a.to_json_string()).unwrap();
        std::fs::write(dir.join("ignored.json"), "{}").unwrap();
        let corpus = load_dir(&dir).unwrap();
        assert_eq!(corpus.len(), 2);
        assert_eq!(corpus[0].1.name, "a-scenario");
        assert_eq!(corpus[1].1.name, "b-scenario");

        std::fs::write(dir.join("c.scenario.json"), "{ not json").unwrap();
        assert!(matches!(
            load_dir(&dir),
            Err(CorpusError::Bad {
                error: SpecError::Json(_),
                ..
            })
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn duplicate_names_are_rejected() {
        let dir = std::env::temp_dir().join("spam_scenario_corpus_dup_test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let spec = ScenarioSpec::example("same");
        std::fs::write(dir.join("x.scenario.json"), spec.to_json_string()).unwrap();
        std::fs::write(dir.join("y.scenario.json"), spec.to_json_string()).unwrap();
        assert!(matches!(
            load_dir(&dir),
            Err(CorpusError::DuplicateName { .. })
        ));
        std::fs::remove_dir_all(&dir).ok();
    }
}
