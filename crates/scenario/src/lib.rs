#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

//! # spam-scenario — declarative experiment descriptions
//!
//! Every axis the workspace can vary — topology (lattice size, ports,
//! seed), routing algorithm (SPAM, up*/down* unicast, software
//! multicast), traffic model (the full `traffic` library), fault plan
//! (static damage or a live reconfiguration storm), event-queue
//! implementation, seeds, and replication count — composed in one
//! serializable [`ScenarioSpec`]. A scenario is *data*: a
//! `*.scenario.json` file fully determines a simulation, so new
//! experiments are JSON files, not bespoke binaries.
//!
//! The pieces:
//!
//! * [`ScenarioSpec`] — the model, with [`ScenarioSpec::validate`]
//!   returning typed [`SpecError`]s for every malformed or unrealizable
//!   combination (never a panic).
//! * [`ScenarioSpec::from_json`] / [`ScenarioSpec::to_json_string`] — a
//!   strict, exact-round-trip codec over the crate's own minimal
//!   [`json`] layer (the workspace `serde` is an offline no-op shim).
//! * [`run_spec`] / [`run_once`] — deterministic execution:
//!   per-replication seeds derive from the spec seeds, replication 0
//!   uses them verbatim, and the same spec always produces byte-identical
//!   [`wormsim::SimOutcome`]s (pinned across both event-queue
//!   implementations by the golden corpus suite).
//! * [`corpus::load_dir`] — loads a committed directory of scenarios.
//!
//! ```
//! use spam_scenario::{run_spec, ScenarioSpec};
//!
//! let mut spec = ScenarioSpec::example("doc-quickstart");
//! spec.topology.switches = 24;
//! spec.topology.seed = 7;
//! // Round-trip through JSON — the file format *is* the API.
//! let spec = ScenarioSpec::from_json(&spec.to_json_string()).unwrap();
//! let report = run_spec(&spec).unwrap();
//! assert!(report.all_clean());
//! assert_eq!(report.reps.len(), 1);
//! assert!(report.mean_latency_us().unwrap() > 10.0); // startup floor
//! ```

pub mod artifact;
pub mod bisect;
pub mod codec;
pub mod corpus;
pub mod json;
pub mod minimize;
pub mod mutate;
pub mod run;
pub mod snapshot;
pub mod spec;

pub use artifact::{spec_fingerprint, ArtifactPrefix, ScenarioArtifacts, StormArtifacts};
pub use bisect::{bisect_divergence, DivergenceReport, EventDivergence};
pub use corpus::{load_dir, CorpusError, SCENARIO_SUFFIX};
pub use minimize::simplify_candidates;
pub use mutate::{mutate_spec, Mutation, STAGGER_PALETTE, SWITCH_PALETTE};
pub use run::{
    run_once, run_once_full, run_once_with_topology, run_spec, run_with_artifacts, split_seed,
    summarize, RepSummary, ScenarioReport,
};
pub use snapshot::{outcome_digest, resume_once, run_once_checkpointed, CheckpointedRun};
pub use spec::{
    ArrivalSpec, EngineSpec, FaultModelSpec, FaultsSpec, PatternSpec, PolicySpec, QueueSpec,
    RoutingSpec, ScenarioSpec, SpecError, StrategySpec, TopologySpec, TrafficSpec,
};
