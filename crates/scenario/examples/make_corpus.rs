//! Regenerates the committed scenario corpus (`scenarios/*.scenario.json`).
//!
//! ```text
//! cargo run -p spam-scenario --example make_corpus [-- <out_dir>]
//! ```
//!
//! The corpus is authored here — in code, through the typed
//! [`ScenarioSpec`] model — and serialized through the same codec the
//! loader uses, so every committed file is schema-exact by construction.
//! Each entry composes axes the paper never combined: hotspots under
//! live link storms, incast on a degraded 256-switch lattice, coordinate
//! permutations on the unicast baseline, bursty MMPP arrivals, bounded
//! closed-loop injection, and the software-multicast control arm.

use spam_scenario::{
    ArrivalSpec, FaultModelSpec, FaultsSpec, PatternSpec, PolicySpec, QueueSpec, RoutingSpec,
    ScenarioSpec, StrategySpec, TrafficSpec,
};

/// The committed corpus, in one place.
fn corpus() -> Vec<ScenarioSpec> {
    let nb = ArrivalSpec::NegativeBinomial { r: 1 };
    let mut out = Vec::new();

    // 1. The paper's Figure 2 point as a scenario file: one 16-destination
    //    multicast in an idle 64-switch network.
    let mut s = ScenarioSpec::example("fig2_single_multicast");
    s.description = "Figure 2 reference point: one 16-destination SPAM multicast, idle 64-switch \
                     lattice"
        .into();
    s.topology.seed = 2024;
    s.traffic = TrafficSpec::SingleMulticast {
        dests: 16,
        len: 128,
    };
    s.seed = 1;
    s.replications = 3;
    out.push(s);

    // 2. The paper's Figure 3 regime, quick-sized.
    let mut s = ScenarioSpec::example("fig3_mixed_negbinomial");
    s.description = "Figure 3 regime: 90/10 mixed traffic, negative-binomial arrivals, 32 \
                     switches"
        .into();
    s.topology.switches = 32;
    s.topology.seed = 7;
    s.traffic = TrafficSpec::Mixed {
        unicast_fraction: 0.9,
        multicast_dests: 8,
        rate_per_node_per_us: 0.02,
        len: 128,
        messages: 250,
        arrival: nb,
    };
    s.seed = 7;
    s.replications = 2;
    out.push(s);

    // 3. Hotspot traffic while a 20% link storm tears the fabric down
    //    mid-run (the live-reconfiguration path end to end).
    let mut s = ScenarioSpec::example("hotspot_link_storm");
    s.description = "4-node hotspot under a live 20% link storm: teardowns, relabeling, and \
                     epoch routing under concentrated load"
        .into();
    s.topology.seed = 11;
    s.traffic = TrafficSpec::Hotspot {
        hot_nodes: 4,
        hot_fraction: 0.3,
        rate_per_node_per_us: 0.015,
        len: 64,
        messages: 300,
        arrival: nb,
    };
    s.faults = FaultsSpec::Storm {
        model: FaultModelSpec::IidLinks { rate: 0.2 },
        seed: 99,
        window_start_us: 20,
        window_end_us: 60,
        bursts: 3,
    };
    s.horizon_us = Some(2_000);
    s.seed = 13;
    out.push(s);

    // 4. Incast on a degraded 256-switch lattice: static 10% link damage,
    //    reconfigured, many-to-few inside the largest component.
    let mut s = ScenarioSpec::example("incast_degraded_256");
    s.description = "4-server incast on a 256-switch lattice with 10% of links dead before the \
                     run (largest surviving component)"
        .into();
    s.topology.switches = 256;
    s.topology.seed = 42;
    s.traffic = TrafficSpec::Incast {
        servers: 4,
        rate_per_client_per_us: 0.01,
        len: 64,
        messages: 400,
        arrival: nb,
    };
    s.faults = FaultsSpec::Static {
        model: FaultModelSpec::IidLinks { rate: 0.1 },
        seed: 5,
    };
    s.seed = 19;
    out.push(s);

    // 5. Every node broadcasts at once — the OCRQ worst case.
    let mut s = ScenarioSpec::example("broadcast_storm_32");
    s.description =
        "All 32 processors multicast to all others, 100 ns apart: maximal contention".into();
    s.topology.switches = 32;
    s.topology.seed = 3;
    s.traffic = TrafficSpec::BroadcastStorm {
        len: 64,
        stagger_ns: 100,
    };
    out.push(s);

    // 6. Transpose permutation on the classic up*/down* unicast baseline.
    let mut s = ScenarioSpec::example("transpose_updown_unicast");
    s.description =
        "Lattice transpose permutation carried by plain up*/down* unicast routing".into();
    s.topology.seed = 9;
    s.routing = RoutingSpec::UpDownUnicast;
    s.traffic = TrafficSpec::Permutation {
        pattern: PatternSpec::Transpose,
        rate_per_node_per_us: 0.02,
        len: 64,
        messages_per_node: 3,
        arrival: nb,
    };
    s.seed = 23;
    s.replications = 2;
    out.push(s);

    // 7. Bit-complement permutation under SPAM with the ablation's
    //    first-legal selection policy.
    let mut s = ScenarioSpec::example("bit_complement_spam");
    s.description = "Bit-complement permutation under SPAM, first-legal selection (ablation \
                     policy)"
        .into();
    s.topology.seed = 13;
    s.routing = RoutingSpec::Spam {
        policy: PolicySpec::FirstLegal,
    };
    s.traffic = TrafficSpec::Permutation {
        pattern: PatternSpec::BitComplement,
        rate_per_node_per_us: 0.02,
        len: 64,
        messages_per_node: 3,
        arrival: nb,
    };
    s.seed = 29;
    out.push(s);

    // 8. Figure 3 traffic with bursty on/off (MMPP) arrivals.
    let mut s = ScenarioSpec::example("bursty_onoff_mixed");
    s.description = "90/10 mixed traffic with two-state on/off bursts (25% duty cycle) over the \
                     negative-binomial process"
        .into();
    s.topology.switches = 32;
    s.topology.seed = 21;
    s.traffic = TrafficSpec::Mixed {
        unicast_fraction: 0.9,
        multicast_dests: 8,
        rate_per_node_per_us: 0.03,
        len: 128,
        messages: 250,
        arrival: ArrivalSpec::OnOff {
            r: 1,
            mean_on_us: 100,
            mean_off_us: 300,
        },
    };
    s.seed = 31;
    out.push(s);

    // 9. Closed-loop injection: at most 4 outstanding per source.
    let mut s = ScenarioSpec::example("closed_loop_window4");
    s.description = "Closed-loop unicasts, window 4, 6 messages per source, 2 µs think time".into();
    s.topology.switches = 24;
    s.topology.seed = 17;
    s.traffic = TrafficSpec::ClosedLoop {
        window: 4,
        messages_per_source: 6,
        len: 64,
        think_ns: 2_000,
    };
    s.seed = 37;
    s.replications = 2;
    out.push(s);

    // 10. The software-multicast control arm on mixed traffic: every
    //     multicast expands into a binomial unicast tree.
    let mut s = ScenarioSpec::example("software_multicast_mixed");
    s.description = "80/20 mixed traffic where multicasts run as binomial software-multicast \
                     unicast trees (the paper's baseline) on up*/down* routing"
        .into();
    s.topology.switches = 24;
    s.topology.seed = 31;
    s.routing = RoutingSpec::SoftwareMulticast;
    s.traffic = TrafficSpec::Mixed {
        unicast_fraction: 0.8,
        multicast_dests: 4,
        rate_per_node_per_us: 0.01,
        len: 64,
        messages: 120,
        arrival: nb,
    };
    s.seed = 41;
    out.push(s);

    // 11. A region fault (dead rack) with every off-default engine knob:
    //     uniform-retry lattice sampling, heap queue, deep buffers, an
    //     extra header flit, and hotspot traffic inside the survivors.
    let mut s = ScenarioSpec::example("region_fault_hotspot");
    s.description = "Manhattan-radius-2 region fault on a uniform-retry lattice; hotspot traffic \
                     in the surviving component; heap queue, 2-flit buffers, 1 extra header flit"
        .into();
    s.topology.switches = 48;
    s.topology.seed = 15;
    s.topology.strategy = StrategySpec::UniformRetry;
    s.traffic = TrafficSpec::Hotspot {
        hot_nodes: 2,
        hot_fraction: 0.5,
        rate_per_node_per_us: 0.01,
        len: 64,
        messages: 200,
        arrival: nb,
    };
    s.faults = FaultsSpec::Static {
        model: FaultModelSpec::Region { radius: 2 },
        seed: 77,
    };
    s.engine.queue = Some(QueueSpec::Heap);
    s.engine.input_buffer_flits = 2;
    s.engine.output_buffer_flits = 2;
    s.engine.extra_header_flits = 1;
    s.seed = 43;
    out.push(s);

    out
}

fn main() {
    let out_dir = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "scenarios".to_string());
    std::fs::create_dir_all(&out_dir).expect("create corpus dir");
    for spec in corpus() {
        spec.validate().expect("corpus specs must validate");
        let path = format!("{out_dir}/{}.scenario.json", spec.name);
        std::fs::write(&path, spec.to_json_string()).expect("write scenario");
        println!("wrote {path}");
    }
}
