#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

//! # spam-snapshot
//!
//! A compact, versioned, checksummed binary codec for mid-run engine
//! snapshots. No external dependencies: like the hand-rolled JSON codec
//! in `spam-scenario`, the format is fully specified by this crate so a
//! snapshot written today decodes identically on any build of the same
//! format version.
//!
//! ## Wire format
//!
//! | offset        | bytes | contents                                    |
//! |---------------|-------|---------------------------------------------|
//! | 0             | 8     | magic `b"SPAMSNAP"`                         |
//! | 8             | 4     | format version (`u32` LE)                   |
//! | 12            | …     | payload: tagged, length-prefixed sections   |
//! | len − 8       | 8     | FNV-1a 64 checksum of bytes `[0, len − 8)`  |
//!
//! Every primitive is little-endian. A *section* is `tag: u32, len: u32`
//! followed by `len` body bytes; sections let a reader fail with a precise
//! [`SnapshotError::SectionMismatch`] instead of silently misparsing when
//! producer and consumer disagree about layout.
//!
//! ## Version policy
//!
//! `FORMAT_VERSION` is bumped on **any** change to the payload layout —
//! adding, removing, reordering, or re-typing a field all count. Readers
//! reject every version other than their own with
//! [`SnapshotError::VersionSkew`]; there is no cross-version migration.
//! Snapshots are *run artifacts* (crash recovery, warm starts, divergence
//! bisection), not archival data: a version bump simply invalidates stale
//! checkpoint files, and the producing run regenerates them. Consumers
//! that persist snapshots across tool upgrades must be prepared to fall
//! back to a cold start on `VersionSkew`.
//!
//! ## Integrity
//!
//! [`SnapReader::open`] verifies magic, version, and the FNV-1a trailer
//! before any field is decoded, so a bit flip anywhere in the file
//! surfaces as [`SnapshotError::ChecksumMismatch`] — never as a garbage
//! decode. Structural invariants (enum tags, slab free lists, length
//! sanity) are then re-validated field by field; a snapshot that passes
//! the checksum but violates an invariant yields a typed
//! [`SnapshotError::Corrupt`], never a panic.

use std::fmt;

/// Magic bytes opening every snapshot.
pub const MAGIC: [u8; 8] = *b"SPAMSNAP";

/// Current snapshot format version (see the version policy in the crate
/// docs: any payload layout change bumps this).
pub const FORMAT_VERSION: u32 = 1;

/// FNV-1a 64-bit hash of a byte slice — the trailer checksum, also handy
/// as a cheap content digest for checkpoint deduplication.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Typed decode/validation failure. Every malformed input maps to one of
/// these — the decode path never panics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SnapshotError {
    /// The input ended before a field could be read.
    Truncated {
        /// Bytes the pending read needed.
        need: usize,
        /// Bytes actually available.
        have: usize,
    },
    /// The input does not start with the snapshot magic.
    BadMagic,
    /// The input was written by a different format version.
    VersionSkew {
        /// Version recorded in the input.
        found: u32,
        /// The only version this reader accepts.
        supported: u32,
    },
    /// The FNV-1a trailer does not match the payload.
    ChecksumMismatch {
        /// Checksum recorded in the trailer.
        stored: u64,
        /// Checksum recomputed over the payload.
        computed: u64,
    },
    /// A section header carried an unexpected tag.
    SectionMismatch {
        /// Tag the reader expected next.
        expected: u32,
        /// Tag actually present.
        found: u32,
    },
    /// A field value violates a structural invariant (bad enum tag,
    /// inconsistent length, invalid free list, …).
    Corrupt(&'static str),
    /// The snapshot was taken under a different engine configuration or
    /// topology than the one offered for restore.
    ConfigMismatch(&'static str),
    /// The routing algorithm in use has no header codec, so in-flight
    /// worm headers cannot be serialized.
    UnsupportedRouting(&'static str),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Truncated { need, have } => {
                write!(f, "snapshot truncated: needed {need} bytes, had {have}")
            }
            SnapshotError::BadMagic => write!(f, "not a snapshot: bad magic"),
            SnapshotError::VersionSkew { found, supported } => {
                write!(
                    f,
                    "snapshot format version {found} unsupported (this build reads {supported})"
                )
            }
            SnapshotError::ChecksumMismatch { stored, computed } => {
                write!(
                    f,
                    "snapshot checksum mismatch: trailer {stored:#018x}, payload hashes to {computed:#018x}"
                )
            }
            SnapshotError::SectionMismatch { expected, found } => {
                write!(
                    f,
                    "snapshot section mismatch: expected tag {expected:#x}, found {found:#x}"
                )
            }
            SnapshotError::Corrupt(what) => write!(f, "snapshot corrupt: {what}"),
            SnapshotError::ConfigMismatch(what) => {
                write!(f, "snapshot taken under a different configuration: {what}")
            }
            SnapshotError::UnsupportedRouting(ty) => {
                write!(f, "routing algorithm {ty} has no snapshot header codec")
            }
        }
    }
}

impl std::error::Error for SnapshotError {}

/// Append-only snapshot encoder over a reusable byte buffer.
///
/// Call [`SnapWriter::begin`] to start a snapshot (clears the buffer and
/// writes magic + version), the `put_*` family to append fields,
/// [`SnapWriter::begin_section`]/[`SnapWriter::end_section`] to frame
/// sections, and [`SnapWriter::seal`] to append the checksum trailer.
/// The buffer is retained across snapshots, so periodic checkpointing
/// reaches a zero-allocation steady state once the high-water mark is hit.
#[derive(Debug, Default)]
pub struct SnapWriter {
    buf: Vec<u8>,
}

impl SnapWriter {
    /// An empty writer.
    pub fn new() -> Self {
        SnapWriter::default()
    }

    /// An empty writer with `cap` bytes preallocated.
    pub fn with_capacity(cap: usize) -> Self {
        SnapWriter {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Starts a fresh snapshot: clears the buffer (keeping its capacity)
    /// and writes the magic + format-version header.
    pub fn begin(&mut self) {
        self.buf.clear();
        self.buf.extend_from_slice(&MAGIC);
        self.buf.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// The bytes written so far (no trailer until [`SnapWriter::seal`]).
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Appends one byte.
    #[inline]
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a `u16`, little-endian.
    #[inline]
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u32`, little-endian.
    #[inline]
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`, little-endian.
    #[inline]
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `bool` as one byte (0 or 1).
    #[inline]
    pub fn put_bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }

    /// Appends a `usize` as a `u64`.
    #[inline]
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Appends a collection length as a `u32` — the counterpart of
    /// [`SnapReader::get_len`], which bounds the decoded length by the
    /// remaining payload so a crafted snapshot cannot force a huge
    /// allocation.
    #[inline]
    pub fn put_len(&mut self, v: usize) {
        debug_assert!(v <= u32::MAX as usize, "collection too large to snapshot");
        self.put_u32(v as u32);
    }

    /// Appends an optional `u64` (presence byte + value).
    #[inline]
    pub fn put_opt_u64(&mut self, v: Option<u64>) {
        match v {
            None => self.put_u8(0),
            Some(x) => {
                self.put_u8(1);
                self.put_u64(x);
            }
        }
    }

    /// Appends a length-prefixed byte string.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.put_u32(v.len() as u32);
        self.buf.extend_from_slice(v);
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, v: &str) {
        self.put_bytes(v.as_bytes());
    }

    /// Opens a section: writes the tag and a length placeholder, returning
    /// a cookie for [`SnapWriter::end_section`].
    pub fn begin_section(&mut self, tag: u32) -> usize {
        self.put_u32(tag);
        let patch = self.buf.len();
        self.put_u32(0);
        patch
    }

    /// Closes a section opened by [`SnapWriter::begin_section`],
    /// back-patching its byte length.
    pub fn end_section(&mut self, patch: usize) {
        let len = (self.buf.len() - patch - 4) as u32;
        self.buf[patch..patch + 4].copy_from_slice(&len.to_le_bytes());
    }

    /// Appends the FNV-1a trailer and returns the complete snapshot.
    pub fn seal(&mut self) -> &[u8] {
        let sum = fnv1a(&self.buf);
        self.buf.extend_from_slice(&sum.to_le_bytes());
        &self.buf
    }
}

/// Bounds-checked snapshot decoder.
///
/// [`SnapReader::open`] validates magic, version, and the checksum trailer
/// up front; the `get_*` family then decodes fields with explicit bounds
/// checks, so every malformed input yields a typed [`SnapshotError`].
#[derive(Debug)]
pub struct SnapReader<'a> {
    /// Payload bytes: everything between the version field and the trailer.
    buf: &'a [u8],
    pos: usize,
}

impl<'a> SnapReader<'a> {
    /// Opens a sealed snapshot, validating magic, format version, and the
    /// FNV-1a trailer before any field decoding.
    pub fn open(bytes: &'a [u8]) -> Result<Self, SnapshotError> {
        let header = MAGIC.len() + 4;
        if bytes.len() < header + 8 {
            return Err(SnapshotError::Truncated {
                need: header + 8,
                have: bytes.len(),
            });
        }
        if bytes[..MAGIC.len()] != MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let mut v = [0u8; 4];
        v.copy_from_slice(&bytes[MAGIC.len()..header]);
        let version = u32::from_le_bytes(v);
        if version != FORMAT_VERSION {
            return Err(SnapshotError::VersionSkew {
                found: version,
                supported: FORMAT_VERSION,
            });
        }
        let body_end = bytes.len() - 8;
        let mut t = [0u8; 8];
        t.copy_from_slice(&bytes[body_end..]);
        let stored = u64::from_le_bytes(t);
        let computed = fnv1a(&bytes[..body_end]);
        if stored != computed {
            return Err(SnapshotError::ChecksumMismatch { stored, computed });
        }
        Ok(SnapReader {
            buf: &bytes[header..body_end],
            pos: 0,
        })
    }

    /// Payload bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Fails with [`SnapshotError::Corrupt`] if payload bytes remain.
    pub fn finish(&self) -> Result<(), SnapshotError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(SnapshotError::Corrupt("trailing bytes after final section"))
        }
    }

    #[inline]
    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        if self.remaining() < n {
            return Err(SnapshotError::Truncated {
                need: n,
                have: self.remaining(),
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    #[inline]
    pub fn get_u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u16`.
    #[inline]
    pub fn get_u16(&mut self) -> Result<u16, SnapshotError> {
        let s = self.take(2)?;
        Ok(u16::from_le_bytes([s[0], s[1]]))
    }

    /// Reads a little-endian `u32`.
    #[inline]
    pub fn get_u32(&mut self) -> Result<u32, SnapshotError> {
        let s = self.take(4)?;
        Ok(u32::from_le_bytes([s[0], s[1], s[2], s[3]]))
    }

    /// Reads a little-endian `u64`.
    #[inline]
    pub fn get_u64(&mut self) -> Result<u64, SnapshotError> {
        let s = self.take(8)?;
        let mut b = [0u8; 8];
        b.copy_from_slice(s);
        Ok(u64::from_le_bytes(b))
    }

    /// Reads a `bool`; any byte other than 0/1 is [`SnapshotError::Corrupt`].
    #[inline]
    pub fn get_bool(&mut self) -> Result<bool, SnapshotError> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(SnapshotError::Corrupt("bool byte not 0/1")),
        }
    }

    /// Reads a `usize` written by [`SnapWriter::put_usize`].
    #[inline]
    pub fn get_usize(&mut self) -> Result<usize, SnapshotError> {
        let v = self.get_u64()?;
        usize::try_from(v).map_err(|_| SnapshotError::Corrupt("usize overflow"))
    }

    /// Reads an optional `u64` written by [`SnapWriter::put_opt_u64`].
    #[inline]
    pub fn get_opt_u64(&mut self) -> Result<Option<u64>, SnapshotError> {
        match self.get_u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.get_u64()?)),
            _ => Err(SnapshotError::Corrupt("option byte not 0/1")),
        }
    }

    /// Reads a collection length, rejecting values that cannot possibly
    /// fit in the remaining payload (each element consumes ≥ 1 byte), so
    /// a corrupted length can never trigger an outsized allocation.
    #[inline]
    pub fn get_len(&mut self) -> Result<usize, SnapshotError> {
        let n = self.get_u32()? as usize;
        if n > self.remaining() {
            return Err(SnapshotError::Corrupt("collection length exceeds payload"));
        }
        Ok(n)
    }

    /// Reads a length-prefixed byte string.
    pub fn get_bytes(&mut self) -> Result<&'a [u8], SnapshotError> {
        let n = self.get_len()?;
        self.take(n)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Result<&'a str, SnapshotError> {
        std::str::from_utf8(self.get_bytes()?)
            .map_err(|_| SnapshotError::Corrupt("string is not UTF-8"))
    }

    /// Reads a section header, requiring tag `tag`; returns the body
    /// length after validating it fits in the remaining payload.
    pub fn expect_section(&mut self, tag: u32) -> Result<usize, SnapshotError> {
        let found = self.get_u32()?;
        if found != tag {
            return Err(SnapshotError::SectionMismatch {
                expected: tag,
                found,
            });
        }
        let len = self.get_u32()? as usize;
        if len > self.remaining() {
            return Err(SnapshotError::Corrupt("section length exceeds payload"));
        }
        Ok(len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sealed(fill: impl FnOnce(&mut SnapWriter)) -> Vec<u8> {
        let mut w = SnapWriter::new();
        w.begin();
        fill(&mut w);
        w.seal().to_vec()
    }

    #[test]
    fn primitives_round_trip() {
        let bytes = sealed(|w| {
            w.put_u8(0xAB);
            w.put_u16(0xBEEF);
            w.put_u32(0xDEAD_BEEF);
            w.put_u64(0x0123_4567_89AB_CDEF);
            w.put_bool(true);
            w.put_bool(false);
            w.put_usize(42);
            w.put_opt_u64(None);
            w.put_opt_u64(Some(7));
            w.put_bytes(b"hello");
            w.put_str("wörld");
        });
        let mut r = SnapReader::open(&bytes).unwrap();
        assert_eq!(r.get_u8().unwrap(), 0xAB);
        assert_eq!(r.get_u16().unwrap(), 0xBEEF);
        assert_eq!(r.get_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64().unwrap(), 0x0123_4567_89AB_CDEF);
        assert!(r.get_bool().unwrap());
        assert!(!r.get_bool().unwrap());
        assert_eq!(r.get_usize().unwrap(), 42);
        assert_eq!(r.get_opt_u64().unwrap(), None);
        assert_eq!(r.get_opt_u64().unwrap(), Some(7));
        assert_eq!(r.get_bytes().unwrap(), b"hello");
        assert_eq!(r.get_str().unwrap(), "wörld");
        r.finish().unwrap();
    }

    #[test]
    fn sections_frame_and_backpatch() {
        let bytes = sealed(|w| {
            let s = w.begin_section(0x11);
            w.put_u64(5);
            w.end_section(s);
            let s = w.begin_section(0x22);
            w.end_section(s);
        });
        let mut r = SnapReader::open(&bytes).unwrap();
        assert_eq!(r.expect_section(0x11).unwrap(), 8);
        assert_eq!(r.get_u64().unwrap(), 5);
        assert_eq!(r.expect_section(0x22).unwrap(), 0);
        r.finish().unwrap();
        let mut r2 = SnapReader::open(&bytes).unwrap();
        assert_eq!(
            r2.expect_section(0x22),
            Err(SnapshotError::SectionMismatch {
                expected: 0x22,
                found: 0x11
            })
        );
    }

    #[test]
    fn bad_magic_and_version_skew_are_typed() {
        let good = sealed(|w| w.put_u64(1));
        let mut bad = good.clone();
        bad[0] ^= 0xFF;
        assert_eq!(SnapReader::open(&bad).err(), Some(SnapshotError::BadMagic));

        let mut skew = good.clone();
        // Bump the version field and re-seal so only the version differs.
        skew.truncate(skew.len() - 8);
        skew[8..12].copy_from_slice(&(FORMAT_VERSION + 1).to_le_bytes());
        let sum = fnv1a(&skew);
        skew.extend_from_slice(&sum.to_le_bytes());
        assert_eq!(
            SnapReader::open(&skew).err(),
            Some(SnapshotError::VersionSkew {
                found: FORMAT_VERSION + 1,
                supported: FORMAT_VERSION
            })
        );
    }

    #[test]
    fn every_single_bit_flip_is_detected() {
        let bytes = sealed(|w| {
            w.put_u64(0x5555_AAAA_5555_AAAA);
            w.put_str("payload");
        });
        for byte in 0..bytes.len() {
            for bit in 0..8 {
                let mut m = bytes.clone();
                m[byte] ^= 1 << bit;
                let res = SnapReader::open(&m);
                assert!(res.is_err(), "flip at byte {byte} bit {bit} accepted");
            }
        }
    }

    #[test]
    fn every_truncation_is_typed() {
        let bytes = sealed(|w| w.put_bytes(&[1, 2, 3, 4, 5]));
        for cut in 0..bytes.len() {
            let res = SnapReader::open(&bytes[..cut]);
            assert!(res.is_err(), "truncation to {cut} bytes accepted");
        }
    }

    #[test]
    fn oversized_lengths_cannot_allocate() {
        // A length field claiming more elements than remaining bytes must
        // fail before any allocation sized by it.
        let mut w = SnapWriter::new();
        w.begin();
        w.put_u32(u32::MAX); // absurd collection length
        let bytes = w.seal().to_vec();
        let mut r = SnapReader::open(&bytes).unwrap();
        assert_eq!(
            r.get_len().err(),
            Some(SnapshotError::Corrupt("collection length exceeds payload"))
        );
    }

    #[test]
    fn writer_buffer_is_reused_across_snapshots() {
        let mut w = SnapWriter::with_capacity(256);
        w.begin();
        w.put_u64(1);
        let first = w.seal().to_vec();
        let cap = {
            w.begin();
            w.put_u64(2);
            w.seal();
            // Capacity must not have grown past the preallocation.
            first.len() <= 256
        };
        assert!(cap);
    }

    #[test]
    fn errors_display_and_implement_error() {
        let e: Box<dyn std::error::Error> = Box::new(SnapshotError::BadMagic);
        assert!(e.to_string().contains("magic"));
        let e2 = SnapshotError::Corrupt("free list");
        assert!(format!("{e2}").contains("free list"));
    }
}
