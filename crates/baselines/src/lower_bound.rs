//! The analytic lower bound for unicast-based (software) multicast.
//!
//! McKinley et al. showed that distributing a message to `d` destinations
//! with unicasts needs at least ⌈log₂(d+1)⌉ communication phases — the
//! informed set can at most double per phase. Each phase costs at least one
//! startup latency, so the latency lower bound (accounting for startup
//! alone, as the paper does in §4) is ⌈log₂(d+1)⌉ · t_startup.
//!
//! §4 quotes 90 µs for a broadcast in a 256-node network; that arithmetic
//! corresponds to d = 256 (⌈log₂ 257⌉ = 9 phases). With d = 255 reachable
//! *other* processors the bound is 8 phases / 80 µs. The benchmark harness
//! reports both readings; either way SPAM's <14 µs is a ≥ 5.7× win that
//! grows with network size.

use desim::Duration;

/// Minimum number of unicast phases to reach `d` destinations.
pub fn software_multicast_phases(d: u64) -> u32 {
    // ⌈log₂(d + 1)⌉ = bit length of d, exactly, without floating point.
    u64::BITS - d.leading_zeros()
}

/// Startup-only latency lower bound for a `d`-destination software
/// multicast.
pub fn software_multicast_lower_bound(d: u64, startup: Duration) -> Duration {
    startup * software_multicast_phases(d) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_counts_match_formula() {
        // ⌈log₂(d+1)⌉ reference values.
        let expect = [
            (0u64, 0u32),
            (1, 1),
            (2, 2),
            (3, 2),
            (4, 3),
            (7, 3),
            (8, 4),
            (15, 4),
            (16, 5),
            (127, 7),
            (128, 8),
            (255, 8),
            (256, 9),
        ];
        for (d, phases) in expect {
            assert_eq!(
                software_multicast_phases(d),
                phases,
                "d={d}: expected ceil(log2({})) = {phases}",
                d + 1
            );
        }
    }

    #[test]
    fn paper_claims_reproduce() {
        let startup = Duration::from_us(10);
        // The paper's 90 µs figure (d = 256).
        assert_eq!(
            software_multicast_lower_bound(256, startup),
            Duration::from_us(90)
        );
        // The d = 255 (other-processors) reading.
        assert_eq!(
            software_multicast_lower_bound(255, startup),
            Duration::from_us(80)
        );
        // 128-node broadcast.
        assert_eq!(
            software_multicast_lower_bound(127, startup),
            Duration::from_us(70)
        );
    }

    #[test]
    fn bound_is_monotone() {
        let s = Duration::from_us(10);
        let mut prev = Duration::ZERO;
        for d in 0..2000 {
            let b = software_multicast_lower_bound(d, s);
            assert!(b >= prev);
            prev = b;
        }
    }
}
