#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

//! # baselines — the schemes SPAM is compared against
//!
//! Three baselines frame the paper's evaluation:
//!
//! * [`UpDownUnicastRouting`] — classic up*/down* unicast routing
//!   (Schroeder et al., Autonet), the standard deadlock-free routing for
//!   irregular switch networks. SPAM's unicast stage is a restriction of
//!   it (down-cross before down-tree); comparing the two isolates the cost
//!   of that restriction.
//! * [`ucast_multicast::UnicastMulticast`] — software (unicast-based)
//!   multicast over a binomial tree: the message is forwarded in multiple
//!   communication phases, each paying a full startup latency. This is the
//!   scheme whose ⌈log₂(d+1)⌉ startup lower bound the paper's §4
//!   comparison invokes.
//! * [`lower_bound`] — the analytic startup-only lower bound itself.

pub mod lower_bound;
pub mod ucast_multicast;
pub mod updown_unicast;

pub use lower_bound::{software_multicast_lower_bound, software_multicast_phases};
pub use ucast_multicast::UnicastMulticast;
pub use updown_unicast::{UpDownPrecomp, UpDownUnicastRouting};
