//! Classic up*/down* unicast routing (Schroeder et al., Autonet).
//!
//! A worm uses zero or more **up** channels followed by zero or more
//! **down** channels — with *no* distinction between down tree and down
//! cross channels. A down channel `(u, v)` is legal only if the target is
//! still reachable from `v` through down channels alone (otherwise the worm
//! would strand itself in the down subnetwork).
//!
//! This is the routing SPAM generalizes; it serves two roles here: the
//! unicast baseline for ablation D, and — together with SPAM's unicast
//! stage — a measure of how much SPAM's extra ordering restriction
//! (down-cross before down-tree) costs on unicast traffic.

use netgraph::{ChannelId, NodeId, Topology};
use std::collections::VecDeque;
use std::sync::Arc;
use updown::{BitMatrix, ChannelClass, UpDownLabeling};
use wormsim::{
    MessageSpec, RouteDecision, RouteError, RoutingAlgorithm, SnapReader, SnapWriter, SnapshotError,
};

/// Routing phase: up channels first, then down channels only.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UdPhase {
    /// May still use any channel (up moves allowed).
    Up,
    /// Committed to the down subnetwork.
    Down,
}

/// Worm header state: the unicast target and the phase.
#[derive(Debug, Clone)]
pub struct UdHeader {
    /// The destination processor.
    pub target: NodeId,
    /// Up or down phase.
    pub phase: UdPhase,
}

/// Up*/down* unicast routing with a min-residual-distance selection
/// function (the same selection discipline the SPAM implementation uses,
/// so comparisons isolate the routing-function difference).
#[derive(Debug, Clone)]
pub struct UpDownUnicastRouting<'a> {
    topo: &'a Topology,
    ud: &'a UpDownLabeling,
    /// `down_reach.get(u, v)` ⇔ `v` reachable from `u` via down channels.
    down_reach: Arc<BitMatrix>,
    /// `dist[target][2 * node + phase]` residual legal distances.
    dist: Arc<Vec<Vec<u16>>>,
}

/// Sentinel for unreachable states.
const UNREACHABLE: u16 = u16::MAX;

/// The router's precomputed state (down-reachability closure and residual
/// distances) detached from the topology borrow, so an artifact cache can
/// keep it alive across runs and re-attach it with
/// [`UpDownUnicastRouting::with_precomp`]. Cloning is two refcount bumps.
#[derive(Debug, Clone)]
pub struct UpDownPrecomp {
    down_reach: Arc<BitMatrix>,
    dist: Arc<Vec<Vec<u16>>>,
}

impl UpDownPrecomp {
    /// Approximate heap footprint in bytes (distance rows dominate; the
    /// bit matrix is `n²/8`).
    pub fn approx_bytes(&self) -> usize {
        let rows: usize = self.dist.iter().map(|r| r.len() * 2).sum();
        let n = self.dist.len();
        rows + n * n / 8
    }
}

impl<'a> UpDownUnicastRouting<'a> {
    /// Builds the router, precomputing down-reachability and distances.
    pub fn new(topo: &'a Topology, ud: &'a UpDownLabeling) -> Self {
        let down_reach = Arc::new(Self::build_down_reach(topo, ud));
        let dist = Arc::new(
            topo.nodes()
                .map(|t| Self::build_dist(topo, ud, &down_reach, t))
                .collect(),
        );
        UpDownUnicastRouting {
            topo,
            ud,
            down_reach,
            dist,
        }
    }

    /// Builds the router from an *already computed* [`UpDownPrecomp`] —
    /// the artifact-cache entry point. `precomp` must have been taken
    /// (via [`Self::precomp`]) from a router built over exactly this
    /// `(topo, ud)` pair; behavior is then identical to [`Self::new`]
    /// while skipping the closure and per-target BFS work.
    pub fn with_precomp(
        topo: &'a Topology,
        ud: &'a UpDownLabeling,
        precomp: UpDownPrecomp,
    ) -> Self {
        assert_eq!(
            precomp.dist.len(),
            topo.num_nodes(),
            "precomputed distances cover every node"
        );
        UpDownUnicastRouting {
            topo,
            ud,
            down_reach: precomp.down_reach,
            dist: precomp.dist,
        }
    }

    /// The precomputed state, detached for caching (see
    /// [`Self::with_precomp`]).
    pub fn precomp(&self) -> UpDownPrecomp {
        UpDownPrecomp {
            down_reach: Arc::clone(&self.down_reach),
            dist: Arc::clone(&self.dist),
        }
    }

    /// Transitive closure over the (acyclic) down-channel digraph, in
    /// reverse (level, id) topological order.
    fn build_down_reach(topo: &Topology, ud: &UpDownLabeling) -> BitMatrix {
        let n = topo.num_nodes();
        let mut order: Vec<NodeId> = topo.nodes().collect();
        order.sort_unstable_by_key(|v| (ud.level(*v), *v));
        let mut reach = BitMatrix::new(n);
        for &u in order.iter().rev() {
            reach.set(u.index(), u.index());
            for &c in topo.out_channels(u) {
                if ud.class(c).is_down() {
                    let w = topo.channel(c).dst;
                    reach.or_row_into(w.index(), u.index());
                }
            }
        }
        reach
    }

    /// Reverse BFS over the two-layer (Up/Down) legality graph for one
    /// target.
    fn build_dist(
        topo: &Topology,
        ud: &UpDownLabeling,
        down_reach: &BitMatrix,
        target: NodeId,
    ) -> Vec<u16> {
        let n = topo.num_nodes();
        let idx = |v: NodeId, ph: UdPhase| 2 * v.index() + (ph == UdPhase::Down) as usize;
        let mut d = vec![UNREACHABLE; 2 * n];
        let mut q = VecDeque::new();
        for ph in [UdPhase::Up, UdPhase::Down] {
            d[idx(target, ph)] = 0;
            q.push_back((target, ph));
        }
        while let Some((v, ph_v)) = q.pop_front() {
            let dv = d[idx(v, ph_v)];
            for &c in topo.in_channels(v) {
                let u = topo.channel(c).src;
                let preds: &[UdPhase] = if ud.class(c).is_up() {
                    if ph_v == UdPhase::Up {
                        &[UdPhase::Up]
                    } else {
                        &[]
                    }
                } else if ph_v == UdPhase::Down && down_reach.get(v.index(), target.index()) {
                    &[UdPhase::Up, UdPhase::Down]
                } else {
                    &[]
                };
                for &ph_u in preds {
                    let slot = &mut d[idx(u, ph_u)];
                    if *slot == UNREACHABLE {
                        *slot = dv + 1;
                        q.push_back((u, ph_u));
                    }
                }
            }
        }
        d
    }

    /// Residual legal distance from `(node, phase)` to `target`.
    pub fn dist(&self, target: NodeId, node: NodeId, phase: UdPhase) -> u16 {
        self.dist[target.index()][2 * node.index() + (phase == UdPhase::Down) as usize]
    }

    /// Legal `(channel, next phase)` moves from `node` towards `target`.
    pub fn legal_moves(
        &self,
        node: NodeId,
        phase: UdPhase,
        target: NodeId,
    ) -> Vec<(ChannelId, UdPhase)> {
        let mut out = Vec::new();
        for &c in self.topo.out_channels(node) {
            let v = self.topo.channel(c).dst;
            match self.ud.class(c) {
                ChannelClass::UpTree | ChannelClass::UpCross => {
                    if phase == UdPhase::Up {
                        out.push((c, UdPhase::Up));
                    }
                }
                ChannelClass::DownTree | ChannelClass::DownCross => {
                    if self.down_reach.get(v.index(), target.index()) {
                        out.push((c, UdPhase::Down));
                    }
                }
            }
        }
        out
    }
}

impl RoutingAlgorithm for UpDownUnicastRouting<'_> {
    type Header = UdHeader;
    type Scratch = ();

    fn initial_header(&self, spec: &MessageSpec) -> Result<UdHeader, RouteError> {
        assert!(
            spec.is_unicast(),
            "up*/down* baseline routes unicasts only; use a multicast scheme on top"
        );
        let target = spec.dests[0];
        if !self.ud.is_labeled(target) {
            return Err(RouteError::UnreachableDestination { dest: target });
        }
        Ok(UdHeader {
            target,
            phase: UdPhase::Up,
        })
    }

    fn snapshot_name(&self) -> &'static str {
        "updown-unicast"
    }

    fn encode_header(&self, h: &UdHeader, w: &mut SnapWriter) -> Result<(), SnapshotError> {
        w.put_u32(h.target.0);
        w.put_u8(match h.phase {
            UdPhase::Up => 0,
            UdPhase::Down => 1,
        });
        Ok(())
    }

    fn decode_header(&self, r: &mut SnapReader) -> Result<UdHeader, SnapshotError> {
        Ok(UdHeader {
            target: NodeId(r.get_u32()?),
            phase: match r.get_u8()? {
                0 => UdPhase::Up,
                1 => UdPhase::Down,
                _ => return Err(SnapshotError::Corrupt("unknown up*/down* phase")),
            },
        })
    }

    fn route(
        &self,
        node: NodeId,
        _in_ch: ChannelId,
        header: &UdHeader,
        _spec: &MessageSpec,
        _scratch: &mut (),
        out: &mut RouteDecision<UdHeader>,
    ) -> Result<(), RouteError> {
        // The selection is a fixed min over (residual distance, channel),
        // so fold it into the legality scan — no candidate list, no
        // allocation per hop.
        let mut best: Option<(u16, ChannelId, UdPhase)> = None;
        for &c in self.topo.out_channels(node) {
            let v = self.topo.channel(c).dst;
            let ph = match self.ud.class(c) {
                ChannelClass::UpTree | ChannelClass::UpCross => {
                    if header.phase == UdPhase::Up {
                        UdPhase::Up
                    } else {
                        continue;
                    }
                }
                ChannelClass::DownTree | ChannelClass::DownCross => {
                    if self.down_reach.get(v.index(), header.target.index()) {
                        UdPhase::Down
                    } else {
                        continue;
                    }
                }
            };
            let d = self.dist(header.target, v, ph);
            if best.is_none_or(|(bd, bc, _)| (d, c) < (bd, bc)) {
                best = Some((d, c, ph));
            }
        }
        let (_, ch, phase) = best.ok_or(RouteError::NoLegalMove {
            node,
            target: header.target,
        })?;
        out.push(
            ch,
            UdHeader {
                target: header.target,
                phase,
            },
        );
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netgraph::gen::fixtures::figure1;
    use netgraph::gen::lattice::IrregularConfig;
    use updown::RootSelection;
    use wormsim::{NetworkSim, SimConfig};

    #[test]
    fn all_pairs_deliver_on_figure1() {
        let (t, l) = figure1();
        let ud = UpDownLabeling::build(&t, RootSelection::Fixed(l.by_label(1).unwrap()));
        let router = UpDownUnicastRouting::new(&t, &ud);
        let procs: Vec<NodeId> = t.processors().collect();
        for &a in &procs {
            for &b in &procs {
                if a == b {
                    continue;
                }
                let mut sim = NetworkSim::new(&t, router.clone(), SimConfig::paper());
                sim.submit(MessageSpec::unicast(a, b, 64)).unwrap();
                let out = sim.run();
                assert!(out.all_delivered(), "{a} -> {b}");
            }
        }
    }

    #[test]
    fn up_down_is_at_least_as_direct_as_spam() {
        // Classic up*/down* has strictly more legal routes than SPAM's
        // restricted unicast stage, so its shortest legal distance can
        // never be longer.
        let t = IrregularConfig::with_switches(24).generate(5);
        let ud = UpDownLabeling::build(&t, RootSelection::LowestId);
        let udr = UpDownUnicastRouting::new(&t, &ud);
        let spam = spam_core::SpamRouting::new(&t, &ud);
        for a in t.nodes() {
            for b in t.nodes() {
                let d_ud = udr.dist(b, a, UdPhase::Up);
                let d_spam = spam.tables().dist(b, a, spam_core::Phase::Up);
                assert_ne!(d_ud, UNREACHABLE, "{a}->{b} unreachable under up*/down*");
                assert!(
                    d_ud <= d_spam,
                    "up*/down* ({d_ud}) longer than SPAM ({d_spam}) {a}->{b}"
                );
            }
        }
    }

    #[test]
    fn random_concurrent_unicasts_never_deadlock() {
        use rand::seq::SliceRandom;
        use rand::{Rng, SeedableRng};
        for seed in 0..5u64 {
            let t = IrregularConfig::with_switches(20).generate(seed);
            let ud = UpDownLabeling::build(&t, RootSelection::LowestId);
            let router = UpDownUnicastRouting::new(&t, &ud);
            let procs: Vec<NodeId> = t.processors().collect();
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0xABCD);
            let mut sim = NetworkSim::new(&t, router, SimConfig::paper());
            for i in 0..40 {
                let src = procs[rng.gen_range(0..procs.len())];
                let dst = *procs
                    .iter()
                    .filter(|&&p| p != src)
                    .collect::<Vec<_>>()
                    .choose(&mut rng)
                    .unwrap();
                sim.submit(
                    MessageSpec::unicast(src, *dst, 128)
                        .at(desim::Time::from_ns(rng.gen_range(0..30_000)))
                        .tag(i),
                )
                .unwrap();
            }
            let out = sim.run();
            assert!(out.all_delivered(), "seed {seed}: {:?}", out.deadlock);
        }
    }

    #[test]
    #[should_panic(expected = "unicasts only")]
    fn rejects_multicast_specs() {
        let (t, l) = figure1();
        let ud = UpDownLabeling::build(&t, RootSelection::Fixed(l.by_label(1).unwrap()));
        let router = UpDownUnicastRouting::new(&t, &ud);
        let by = |x: u32| l.by_label(x).unwrap();
        let spec = MessageSpec::multicast(by(5), vec![by(8), by(9)], 8);
        let _ = router.initial_header(&spec);
    }
}
