//! Unicast-based (software) multicast over a binomial forwarding tree.
//!
//! The message travels as ordinary unicasts: the source informs one
//! destination, then both inform one each, and so on — the recursive-
//! doubling schedule that attains the ⌈log₂(d+1)⌉ phase lower bound when
//! startups dominate. Every hop pays the full communication startup
//! latency (10 µs in §4) plus network transfer, which is exactly the cost
//! SPAM's single-phase worm eliminates.
//!
//! Forwarding is **completion-driven**, not round-synchronized: a node
//! starts re-sending the moment its own copy fully arrives, and its sends
//! to multiple children are serialized by one startup each (one CPU per
//! node). This models practical software multicast slightly favourably —
//! no global barrier between rounds — which only strengthens any SPAM win
//! measured against it.

use desim::{Duration, Time};
use netgraph::NodeId;
use std::collections::HashMap;
use wormsim::{CompletionHook, MessageSpec, MsgId};

/// A unicast-based multicast in flight: the binomial children map plus the
/// [`CompletionHook`] that performs the forwarding inside a simulation.
///
/// ```
/// use baselines::{UnicastMulticast, UpDownUnicastRouting};
/// use netgraph::{gen::lattice::IrregularConfig, NodeId};
/// use updown::{RootSelection, UpDownLabeling};
///
/// let topo = IrregularConfig::with_switches(16).generate(1);
/// let ud = UpDownLabeling::build(&topo, RootSelection::LowestId);
/// let router = UpDownUnicastRouting::new(&topo, &ud);
/// let procs: Vec<NodeId> = topo.processors().collect();
///
/// let mut um = UnicastMulticast::new(procs[0], &procs[1..8], 128,
///                                    desim::Duration::from_us(10));
/// let mut sim = wormsim::NetworkSim::new(&topo, router, wormsim::SimConfig::paper());
/// for spec in um.initial_sends(desim::Time::ZERO) {
///     sim.submit(spec).unwrap();
/// }
/// let out = sim.run_with_hook(&mut um);
/// assert!(um.makespan(&out).is_some());
/// ```
#[derive(Debug, Clone)]
pub struct UnicastMulticast {
    src: NodeId,
    len: u32,
    /// Per-send software serialization gap (normally the startup latency).
    send_gap: Duration,
    /// Binomial-tree children of each participant, largest subtree first.
    children: HashMap<NodeId, Vec<NodeId>>,
    /// Tag namespace: all sends of this multicast share it.
    tag: u64,
    /// Destinations, for accounting.
    num_dests: usize,
}

impl UnicastMulticast {
    /// Plans a binomial dissemination from `src` to `dests` with unicasts
    /// of `len` flits. `send_gap` is the per-send software serialization
    /// cost at one node (use the startup latency for the paper's model).
    pub fn new(src: NodeId, dests: &[NodeId], len: u32, send_gap: Duration) -> Self {
        assert!(!dests.is_empty(), "multicast needs destinations");
        let mut order = Vec::with_capacity(dests.len() + 1);
        order.push(src);
        order.extend_from_slice(dests);
        let mut children: HashMap<NodeId, Vec<NodeId>> = HashMap::new();
        build_binomial(&order, &mut children);
        UnicastMulticast {
            src,
            len,
            send_gap,
            children,
            tag: 0,
            num_dests: dests.len(),
        }
    }

    /// Sets the tag namespace (needed when several schemes share one run).
    pub fn with_tag(mut self, tag: u64) -> Self {
        self.tag = tag;
        self
    }

    /// The unicasts the source issues at time `t0` (serialized by
    /// `send_gap` each). Submit these before running the simulation.
    pub fn initial_sends(&self, t0: Time) -> Vec<MessageSpec> {
        self.sends_from(self.src, t0)
    }

    /// Number of point-to-point messages the scheme uses in total (= d).
    pub fn total_sends(&self) -> usize {
        self.num_dests
    }

    /// Dissemination makespan: latest completion among this multicast's
    /// unicasts minus the earliest generation time. `None` until all
    /// copies arrived.
    pub fn makespan(&self, outcome: &wormsim::SimOutcome) -> Option<Duration> {
        let mine: Vec<&wormsim::MessageResult> = outcome
            .messages
            .iter()
            .filter(|m| m.spec.tag == self.tag)
            .collect();
        if mine.is_empty() || mine.len() != self.num_dests {
            return None;
        }
        let start = mine.iter().map(|m| m.spec.gen_time).min()?;
        let end = mine
            .iter()
            .map(|m| m.completed_at)
            .collect::<Option<Vec<_>>>()?
            .into_iter()
            .max()?;
        Some(end.since(start))
    }

    fn sends_from(&self, node: NodeId, t0: Time) -> Vec<MessageSpec> {
        let Some(kids) = self.children.get(&node) else {
            return Vec::new();
        };
        kids.iter()
            .enumerate()
            .map(|(i, &child)| {
                MessageSpec::unicast(node, child, self.len)
                    .at(t0 + self.send_gap * i as u64)
                    .tag(self.tag)
            })
            .collect()
    }
}

impl CompletionHook for UnicastMulticast {
    fn on_complete(&mut self, _m: MsgId, spec: &MessageSpec, at: Time) -> Vec<MessageSpec> {
        if spec.tag != self.tag {
            return Vec::new();
        }
        // The newly informed node starts forwarding immediately.
        self.sends_from(spec.dests[0], at)
    }
}

/// Recursive-doubling schedule over `order[0..]` (index 0 = the root):
/// the root informs the node at the midpoint, then both halves recurse.
/// Children are recorded largest-subtree-first so deep subtrees start
/// their sends earliest — the classic binomial optimization.
fn build_binomial(order: &[NodeId], children: &mut HashMap<NodeId, Vec<NodeId>>) {
    if order.len() <= 1 {
        return;
    }
    let mid = order.len().div_ceil(2);
    children.entry(order[0]).or_default().push(order[mid]);
    build_binomial(&order[mid..], children);
    build_binomial(&order[..mid], children);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::updown_unicast::UpDownUnicastRouting;
    use netgraph::gen::lattice::IrregularConfig;
    use updown::{RootSelection, UpDownLabeling};
    use wormsim::{NetworkSim, SimConfig};

    fn ids(v: &[u32]) -> Vec<NodeId> {
        v.iter().map(|x| NodeId(*x)).collect()
    }

    #[test]
    fn binomial_tree_counts_and_shape() {
        // 8 participants (src + 7 dests): classic binomial B3.
        let order = ids(&[0, 1, 2, 3, 4, 5, 6, 7]);
        let mut ch = HashMap::new();
        build_binomial(&order, &mut ch);
        let total: usize = ch.values().map(|v| v.len()).sum();
        assert_eq!(total, 7, "every destination informed exactly once");
        // The root's first child owns the larger half.
        assert_eq!(ch[&NodeId(0)], ids(&[4, 2, 1]));
        assert_eq!(ch[&NodeId(4)], ids(&[6, 5]));
        assert_eq!(ch[&NodeId(6)], ids(&[7]));
        assert_eq!(ch[&NodeId(2)], ids(&[3]));
    }

    #[test]
    fn every_destination_informed_exactly_once() {
        for n in 2..40usize {
            let order: Vec<NodeId> = (0..n as u32).map(NodeId).collect();
            let mut ch = HashMap::new();
            build_binomial(&order, &mut ch);
            let mut informed: Vec<NodeId> = ch.values().flatten().copied().collect();
            informed.sort_unstable();
            let expected: Vec<NodeId> = (1..n as u32).map(NodeId).collect();
            assert_eq!(informed, expected, "n={n}");
        }
    }

    #[test]
    fn schedule_length_matches_phase_lower_bound() {
        // A node's i-th send can start no earlier than phase i+1 after it
        // was informed (one send per phase per node); the total schedule
        // length of the binomial plan must equal ceil(log2(d+1)) — i.e.
        // the plan is phase-optimal.
        fn phases(node: NodeId, ch: &HashMap<NodeId, Vec<NodeId>>) -> u32 {
            ch.get(&node)
                .map(|kids| {
                    kids.iter()
                        .enumerate()
                        .map(|(i, &k)| i as u32 + 1 + phases(k, ch))
                        .max()
                        .unwrap_or(0)
                })
                .unwrap_or(0)
        }
        for d in 1..60u64 {
            let order: Vec<NodeId> = (0..=d as u32).map(NodeId).collect();
            let mut ch = HashMap::new();
            build_binomial(&order, &mut ch);
            assert_eq!(
                phases(NodeId(0), &ch),
                crate::lower_bound::software_multicast_phases(d),
                "d={d}"
            );
        }
    }

    #[test]
    fn simulated_software_multicast_delivers_and_respects_bound() {
        let topo = IrregularConfig::with_switches(24).generate(3);
        let ud = UpDownLabeling::build(&topo, RootSelection::LowestId);
        let router = UpDownUnicastRouting::new(&topo, &ud);
        let procs: Vec<NodeId> = topo.processors().collect();
        let src = procs[0];
        let dests: Vec<NodeId> = procs[1..16].to_vec(); // d = 15
        let mut um = UnicastMulticast::new(src, &dests, 128, Duration::from_us(10));
        let mut sim = NetworkSim::new(&topo, router, SimConfig::paper());
        for s in um.initial_sends(Time::ZERO) {
            sim.submit(s).unwrap();
        }
        let out = sim.run_with_hook(&mut um);
        assert!(out.all_delivered(), "{:?}", out.deadlock);
        assert_eq!(out.messages.len(), 15, "one unicast per destination");
        let makespan = um.makespan(&out).unwrap();
        let bound = crate::lower_bound::software_multicast_lower_bound(15, Duration::from_us(10));
        assert!(
            makespan >= bound,
            "makespan {makespan} beat the lower bound {bound}"
        );
        // And it should be within a small factor of it at this scale.
        assert!(makespan.as_ns() < bound.as_ns() * 3);
    }

    #[test]
    fn makespan_none_until_complete() {
        let topo = IrregularConfig::with_switches(8).generate(0);
        let procs: Vec<NodeId> = topo.processors().collect();
        let um = UnicastMulticast::new(procs[0], &procs[1..3], 8, Duration::from_us(10));
        let empty = wormsim::SimOutcome {
            messages: vec![],
            deadlock: None,
            error: None,
            end_time: Time::ZERO,
            quiescent: true,
            counters: Default::default(),
            channel_crossings: Vec::new(),
            fault_times: Vec::new(),
            trace: Default::default(),
            metrics: None,
        };
        assert!(um.makespan(&empty).is_none());
        assert_eq!(um.total_sends(), 2);
    }
}
