//! Single-pass summary statistics (Welford's algorithm).

/// Streaming mean / variance / extrema accumulator. Numerically stable for
/// long runs (no sum-of-squares catastrophic cancellation).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RunningStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl RunningStats {
    /// Empty accumulator.
    pub fn new() -> Self {
        RunningStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Adds many observations.
    pub fn extend(&mut self, xs: impl IntoIterator<Item = f64>) {
        for x in xs {
            self.push(x);
        }
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 for an empty accumulator).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance (`None` below two observations).
    pub fn variance(&self) -> Option<f64> {
        (self.n >= 2).then(|| self.m2 / (self.n - 1) as f64)
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> Option<f64> {
        self.variance().map(f64::sqrt)
    }

    /// Standard error of the mean.
    pub fn std_err(&self) -> Option<f64> {
        self.std_dev().map(|s| s / (self.n as f64).sqrt())
    }

    /// Smallest observation.
    pub fn min(&self) -> Option<f64> {
        (self.n > 0).then_some(self.min)
    }

    /// Largest observation.
    pub fn max(&self) -> Option<f64> {
        (self.n > 0).then_some(self.max)
    }

    /// Merges another accumulator (parallel reduction); the result is as
    /// if all observations were pushed into one accumulator.
    pub fn merge(&mut self, other: &RunningStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let n = n1 + n2;
        self.mean += delta * n2 / n;
        self.m2 += other.m2 + delta * delta * n1 * n2 / n;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_variance_of_known_data() {
        let mut s = RunningStats::new();
        s.extend([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        // Sample variance of this classic dataset is 32/7.
        assert!((s.variance().unwrap() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
    }

    #[test]
    fn degenerate_counts() {
        let mut s = RunningStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), None);
        assert_eq!(s.min(), None);
        s.push(3.5);
        assert_eq!(s.mean(), 3.5);
        assert_eq!(s.variance(), None, "variance needs two samples");
        assert_eq!(s.std_err(), None);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = RunningStats::new();
        whole.extend(xs.iter().copied());
        let mut a = RunningStats::new();
        let mut b = RunningStats::new();
        a.extend(xs[..37].iter().copied());
        b.extend(xs[37..].iter().copied());
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-10);
        assert!((a.variance().unwrap() - whole.variance().unwrap()).abs() < 1e-10);
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = RunningStats::new();
        a.extend([1.0, 2.0, 3.0]);
        let before = a;
        a.merge(&RunningStats::new());
        assert_eq!(a, before);
        let mut empty = RunningStats::new();
        empty.merge(&before);
        assert_eq!(empty, before);
    }

    #[test]
    fn stable_for_large_offsets() {
        // Classic instability test: huge offset, tiny variance. Welford
        // keeps the relative error tiny where a naive sum-of-squares would
        // produce garbage (or even negative variance).
        let mut s = RunningStats::new();
        for i in 0..10_000 {
            s.push(1e9 + (i % 2) as f64);
        }
        let v = s.variance().unwrap();
        assert!(
            (v - 0.25).abs() / 0.25 < 1e-3,
            "variance {v} drifted from 0.25"
        );
    }
}
