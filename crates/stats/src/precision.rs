//! Replication control: run until the confidence interval is tight enough.
//!
//! Implements the §4 protocol — "each data point is within 1% of the mean
//! or better, using 95% confidence intervals" — as a feed/ask loop: the
//! experiment pushes per-replication means, the controller says when to
//! stop.

use crate::ci::{ConfidenceInterval, ConfidenceLevel};
use crate::running::RunningStats;

/// Sequential-stopping controller.
#[derive(Debug, Clone)]
pub struct PrecisionController {
    stats: RunningStats,
    target_rel: f64,
    level: ConfidenceLevel,
    min_reps: u64,
    max_reps: u64,
}

impl PrecisionController {
    /// Stop once the `level` CI half-width is ≤ `target_rel` of the mean,
    /// but not before `min_reps` or after `max_reps` replications.
    pub fn new(target_rel: f64, level: ConfidenceLevel, min_reps: u64, max_reps: u64) -> Self {
        assert!(target_rel > 0.0, "relative target must be positive");
        assert!(min_reps >= 2, "CIs need at least two replications");
        assert!(max_reps >= min_reps);
        PrecisionController {
            stats: RunningStats::new(),
            target_rel,
            level,
            min_reps,
            max_reps,
        }
    }

    /// The paper's protocol: 95% CI within 1% of the mean, 3–1000 reps.
    pub fn paper() -> Self {
        Self::new(0.01, ConfidenceLevel::P95, 3, 1000)
    }

    /// Adds one replication's summary value.
    pub fn push(&mut self, value: f64) {
        self.stats.push(value);
    }

    /// Replications so far.
    pub fn count(&self) -> u64 {
        self.stats.count()
    }

    /// The current interval (once computable).
    pub fn interval(&self) -> Option<ConfidenceInterval> {
        ConfidenceInterval::from_stats(&self.stats, self.level)
    }

    /// The accumulated statistics.
    pub fn stats(&self) -> &RunningStats {
        &self.stats
    }

    /// True when the precision target is met (after `min_reps`) or the
    /// replication budget is exhausted.
    pub fn satisfied(&self) -> bool {
        let n = self.stats.count();
        if n >= self.max_reps {
            return true;
        }
        if n < self.min_reps {
            return false;
        }
        self.interval()
            .is_some_and(|ci| ci.relative_half_width() <= self.target_rel)
    }

    /// True when the target was met within budget (as opposed to stopping
    /// on `max_reps`).
    pub fn met_target(&self) -> bool {
        self.stats.count() >= self.min_reps
            && self
                .interval()
                .is_some_and(|ci| ci.relative_half_width() <= self.target_rel)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_samples_converge_immediately() {
        let mut c = PrecisionController::new(0.01, ConfidenceLevel::P95, 3, 100);
        c.push(10.0);
        assert!(!c.satisfied(), "below min_reps");
        c.push(10.0);
        assert!(!c.satisfied(), "still below min_reps");
        c.push(10.0);
        assert!(c.satisfied(), "zero variance meets any target");
        assert!(c.met_target());
        assert_eq!(c.count(), 3);
    }

    #[test]
    fn noisy_samples_need_more_replications() {
        let mut c = PrecisionController::new(0.01, ConfidenceLevel::P95, 3, 10_000);
        // Alternate ±10% around 100: needs a good number of samples for a
        // 1% CI.
        let mut n = 0u64;
        while !c.satisfied() {
            let x = if n.is_multiple_of(2) { 90.0 } else { 110.0 };
            c.push(x);
            n += 1;
        }
        assert!(n > 20, "only {n} replications for very noisy data");
        assert!(c.met_target());
        let ci = c.interval().unwrap();
        assert!(ci.relative_half_width() <= 0.01);
        assert!((ci.mean - 100.0).abs() < 2.0);
    }

    #[test]
    fn max_reps_terminates_hopeless_runs() {
        let mut c = PrecisionController::new(1e-9, ConfidenceLevel::P95, 2, 50);
        let mut i = 0u64;
        while !c.satisfied() {
            c.push(if i.is_multiple_of(2) { 1.0 } else { 2.0 });
            i += 1;
            assert!(i <= 50, "controller failed to stop");
        }
        assert_eq!(c.count(), 50);
        assert!(!c.met_target());
    }

    #[test]
    fn paper_protocol_parameters() {
        let c = PrecisionController::paper();
        assert_eq!(c.level, ConfidenceLevel::P95);
        assert!((c.target_rel - 0.01).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn min_reps_must_allow_a_ci() {
        PrecisionController::new(0.01, ConfidenceLevel::P95, 1, 10);
    }
}
