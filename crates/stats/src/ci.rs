//! Confidence intervals on the sample mean.

use crate::running::RunningStats;

/// Supported confidence levels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConfidenceLevel {
    /// 95 % (the paper's level).
    P95,
    /// 99 %.
    P99,
}

impl ConfidenceLevel {
    /// Two-sided Student-t quantile for `df` degrees of freedom (normal
    /// quantile beyond the tabulated range — the difference is < 0.5 % past
    /// df = 30).
    fn t_quantile(self, df: u64) -> f64 {
        // Standard two-sided t tables.
        const T95: [f64; 30] = [
            12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179,
            2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064,
            2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
        ];
        const T99: [f64; 30] = [
            63.657, 9.925, 5.841, 4.604, 4.032, 3.707, 3.499, 3.355, 3.250, 3.169, 3.106, 3.055,
            3.012, 2.977, 2.947, 2.921, 2.898, 2.878, 2.861, 2.845, 2.831, 2.819, 2.807, 2.797,
            2.787, 2.779, 2.771, 2.763, 2.756, 2.750,
        ];
        let table = match self {
            ConfidenceLevel::P95 => &T95,
            ConfidenceLevel::P99 => &T99,
        };
        match df {
            0 => f64::INFINITY,
            1..=30 => table[(df - 1) as usize],
            _ => match self {
                ConfidenceLevel::P95 => 1.960,
                ConfidenceLevel::P99 => 2.576,
            },
        }
    }
}

/// A two-sided confidence interval `mean ± half_width`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConfidenceInterval {
    /// Point estimate.
    pub mean: f64,
    /// Half-width of the interval.
    pub half_width: f64,
    /// The level it was computed at.
    pub level: ConfidenceLevel,
}

impl ConfidenceInterval {
    /// Interval from accumulated statistics (`None` below 2 samples).
    pub fn from_stats(stats: &RunningStats, level: ConfidenceLevel) -> Option<Self> {
        let se = stats.std_err()?;
        let t = level.t_quantile(stats.count() - 1);
        Some(ConfidenceInterval {
            mean: stats.mean(),
            half_width: t * se,
            level,
        })
    }

    /// Half-width as a fraction of the mean (the paper's "within 1 % of
    /// the mean" criterion); infinite for a zero mean.
    pub fn relative_half_width(&self) -> f64 {
        if self.mean == 0.0 {
            if self.half_width == 0.0 {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            (self.half_width / self.mean).abs()
        }
    }

    /// Lower bound.
    pub fn low(&self) -> f64 {
        self.mean - self.half_width
    }

    /// Upper bound.
    pub fn high(&self) -> f64 {
        self.mean + self.half_width
    }

    /// True if `x` falls inside the interval.
    pub fn contains(&self, x: f64) -> bool {
        (self.low()..=self.high()).contains(&x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_interval() {
        // Five observations, mean 10, sd 1: CI95 = 10 ± 2.776/sqrt(5).
        let mut s = RunningStats::new();
        s.extend([9.0, 9.5, 10.0, 10.5, 11.0]);
        let ci = ConfidenceInterval::from_stats(&s, ConfidenceLevel::P95).unwrap();
        assert!((ci.mean - 10.0).abs() < 1e-12);
        let expect = 2.776 * s.std_err().unwrap();
        assert!((ci.half_width - expect).abs() < 1e-9);
        assert!(ci.contains(10.0));
        assert!(!ci.contains(12.0));
        assert!(ci.low() < ci.mean && ci.mean < ci.high());
    }

    #[test]
    fn too_few_samples_yield_none() {
        let mut s = RunningStats::new();
        assert!(ConfidenceInterval::from_stats(&s, ConfidenceLevel::P95).is_none());
        s.push(1.0);
        assert!(ConfidenceInterval::from_stats(&s, ConfidenceLevel::P95).is_none());
    }

    #[test]
    fn quantiles_decrease_with_df_and_match_normal_tail() {
        let lvl = ConfidenceLevel::P95;
        let mut prev = f64::INFINITY;
        for df in 1..=40 {
            let t = lvl.t_quantile(df);
            assert!(t <= prev);
            prev = t;
        }
        assert_eq!(lvl.t_quantile(10_000), 1.960);
        assert_eq!(ConfidenceLevel::P99.t_quantile(10_000), 2.576);
        // P99 always wider than P95.
        for df in 1..=50 {
            assert!(ConfidenceLevel::P99.t_quantile(df) > lvl.t_quantile(df));
        }
    }

    #[test]
    fn relative_half_width_degenerate_cases() {
        let ci = ConfidenceInterval {
            mean: 0.0,
            half_width: 0.0,
            level: ConfidenceLevel::P95,
        };
        assert_eq!(ci.relative_half_width(), 0.0);
        let ci2 = ConfidenceInterval {
            mean: 0.0,
            half_width: 1.0,
            level: ConfidenceLevel::P95,
        };
        assert!(ci2.relative_half_width().is_infinite());
        let ci3 = ConfidenceInterval {
            mean: 100.0,
            half_width: 1.0,
            level: ConfidenceLevel::P95,
        };
        assert!((ci3.relative_half_width() - 0.01).abs() < 1e-12);
    }
}
