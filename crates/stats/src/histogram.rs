//! Fixed-width histograms for latency distributions.

/// A histogram with uniform bins over `[lo, hi)` plus underflow/overflow
/// counters.
#[derive(Debug, Clone)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
    count: u64,
}

impl Histogram {
    /// `bins` uniform buckets across `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `hi <= lo` or `bins == 0`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(hi > lo, "empty range");
        assert!(bins > 0, "need at least one bin");
        Histogram {
            lo,
            hi,
            bins: vec![0; bins],
            underflow: 0,
            overflow: 0,
            count: 0,
        }
    }

    /// Records one observation.
    pub fn record(&mut self, x: f64) {
        self.count += 1;
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let n = self.bins.len();
            let w = (self.hi - self.lo) / n as f64;
            let i = (((x - self.lo) / w) as usize).min(n - 1);
            self.bins[i] += 1;
        }
    }

    /// Total observations (including out-of-range).
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Observations below the range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations at or above the range's end.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Bin counts.
    pub fn bins(&self) -> &[u64] {
        &self.bins
    }

    /// `(bin center, count)` pairs — ready for plotting or CSV dumps.
    pub fn centers(&self) -> impl Iterator<Item = (f64, u64)> + '_ {
        let w = (self.hi - self.lo) / self.bins.len() as f64;
        self.bins
            .iter()
            .enumerate()
            .map(move |(i, &c)| (self.lo + w * (i as f64 + 0.5), c))
    }

    /// Merges another histogram with the same geometry (parallel or
    /// per-epoch reduction); the result is as if every observation had been
    /// recorded into one histogram.
    ///
    /// # Panics
    ///
    /// Panics if the ranges or bin counts differ — merging histograms with
    /// different geometry silently produces nonsense.
    pub fn merge(&mut self, other: &Histogram) {
        assert!(
            self.lo == other.lo && self.hi == other.hi && self.bins.len() == other.bins.len(),
            "histogram geometry mismatch: [{}, {}) x {} vs [{}, {}) x {}",
            self.lo,
            self.hi,
            self.bins.len(),
            other.lo,
            other.hi,
            other.bins.len()
        );
        for (b, o) in self.bins.iter_mut().zip(&other.bins) {
            *b += o;
        }
        self.underflow += other.underflow;
        self.overflow += other.overflow;
        self.count += other.count;
    }

    /// The p-th percentile (0–100) over in-range data, linear in bins;
    /// `None` when no in-range observations exist.
    pub fn percentile(&self, p: f64) -> Option<f64> {
        let in_range: u64 = self.bins.iter().sum();
        if in_range == 0 {
            return None;
        }
        let target = (p.clamp(0.0, 100.0) / 100.0 * in_range as f64).ceil() as u64;
        let target = target.max(1);
        let w = (self.hi - self.lo) / self.bins.len() as f64;
        let mut acc = 0;
        for (i, &c) in self.bins.iter().enumerate() {
            acc += c;
            if acc >= target {
                return Some(self.lo + w * (i as f64 + 1.0));
            }
        }
        Some(self.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_into_correct_bins() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        for x in [0.5, 1.5, 1.6, 9.9] {
            h.record(x);
        }
        assert_eq!(h.bins()[0], 1);
        assert_eq!(h.bins()[1], 2);
        assert_eq!(h.bins()[9], 1);
        assert_eq!(h.count(), 4);
        assert_eq!(h.underflow(), 0);
        assert_eq!(h.overflow(), 0);
    }

    #[test]
    fn out_of_range_counted_separately() {
        let mut h = Histogram::new(10.0, 20.0, 5);
        h.record(5.0);
        h.record(25.0);
        h.record(20.0); // hi is exclusive
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.bins().iter().sum::<u64>(), 0);
    }

    #[test]
    fn centers_are_midpoints() {
        let h = Histogram::new(0.0, 4.0, 4);
        let centers: Vec<f64> = h.centers().map(|(c, _)| c).collect();
        assert_eq!(centers, vec![0.5, 1.5, 2.5, 3.5]);
    }

    #[test]
    fn percentiles() {
        let mut h = Histogram::new(0.0, 100.0, 100);
        for i in 0..100 {
            h.record(i as f64 + 0.5);
        }
        assert_eq!(h.percentile(50.0), Some(50.0));
        assert_eq!(h.percentile(99.0), Some(99.0));
        assert_eq!(h.percentile(100.0), Some(100.0));
        assert!(Histogram::new(0.0, 1.0, 4).percentile(50.0).is_none());
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn inverted_range_rejected() {
        Histogram::new(5.0, 5.0, 3);
    }

    #[test]
    fn merge_equals_sequential_recording() {
        let xs: Vec<f64> = (0..200)
            .map(|i| (i as f64 * 0.7).sin() * 60.0 + 40.0)
            .collect();
        let mut whole = Histogram::new(0.0, 100.0, 20);
        let mut a = Histogram::new(0.0, 100.0, 20);
        let mut b = Histogram::new(0.0, 100.0, 20);
        for (i, &x) in xs.iter().enumerate() {
            whole.record(x);
            if i < 73 {
                a.record(x);
            } else {
                b.record(x);
            }
        }
        a.merge(&b);
        assert_eq!(a.bins(), whole.bins());
        assert_eq!(a.count(), whole.count());
        assert_eq!(a.underflow(), whole.underflow());
        assert_eq!(a.overflow(), whole.overflow());
        assert_eq!(a.percentile(50.0), whole.percentile(50.0));
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut h = Histogram::new(0.0, 10.0, 4);
        h.record(1.0);
        h.record(9.5);
        let bins_before = h.bins().to_vec();
        h.merge(&Histogram::new(0.0, 10.0, 4));
        assert_eq!(h.bins(), &bins_before[..]);
        assert_eq!(h.count(), 2);
    }

    #[test]
    #[should_panic(expected = "geometry mismatch")]
    fn merge_rejects_mismatched_geometry() {
        let mut h = Histogram::new(0.0, 10.0, 4);
        h.merge(&Histogram::new(0.0, 10.0, 5));
    }
}
