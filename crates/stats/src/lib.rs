#![warn(missing_docs)]

//! # simstats — statistics for simulation experiments
//!
//! The paper reports that "each data point in our experiments is within 1%
//! of the mean or better, using 95% confidence intervals" (§4). This crate
//! provides the machinery to reproduce that protocol:
//!
//! * [`RunningStats`] — single-pass (Welford) mean/variance accumulation,
//! * [`ConfidenceInterval`] — Student-t / normal confidence intervals,
//! * [`PrecisionController`] — run replications until the interval's
//!   relative half-width meets a target (the paper's 1 %),
//! * [`Histogram`] — fixed-bin latency distributions for the report files.

pub mod ci;
pub mod histogram;
pub mod precision;
pub mod running;

pub use ci::{ConfidenceInterval, ConfidenceLevel};
pub use histogram::Histogram;
pub use precision::PrecisionController;
pub use running::RunningStats;
