//! Simulation results: per-message records, counters, deadlock reports,
//! and typed simulation errors.

use crate::flit::MsgId;
use crate::message::MessageSpec;
use crate::routing::RouteError;
use desim::{Duration, Time};
use netgraph::{ChannelId, NodeId};
use std::fmt;

/// A typed, run-aborting simulation failure.
///
/// Silent misbehaviour in a simulator produces wrong science; crashing
/// deep inside the event loop produces undiagnosable logs. These errors
/// are the middle path: the engine stops the run at the first violation
/// and reports *what* went wrong and *where*, so e.g. a stale labeling on
/// a degraded network reads as "no legal move from s17 towards s3" rather
/// than a panic backtrace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimError {
    /// The routing algorithm returned a typed failure for this header.
    Route {
        /// The affected message.
        msg: MsgId,
        /// The switch where routing failed.
        node: NodeId,
        /// The algorithm's error.
        error: RouteError,
    },
    /// A real flit reached a processor that is not among its message's
    /// destinations — the routing algorithm steered the worm wrong.
    Misroute {
        /// The misrouted message.
        msg: MsgId,
        /// The processor that wrongly received a flit.
        at: NodeId,
    },
    /// The routing algorithm returned an empty request set.
    EmptyDecision {
        /// The affected message.
        msg: MsgId,
        /// The deciding switch.
        node: NodeId,
    },
    /// The routing algorithm requested a channel that does not leave the
    /// deciding switch.
    ForeignChannel {
        /// The affected message.
        msg: MsgId,
        /// The deciding switch.
        node: NodeId,
        /// The offending channel.
        channel: ChannelId,
    },
    /// The routing algorithm requested the same channel twice in one
    /// decision.
    DuplicateRequest {
        /// The affected message.
        msg: MsgId,
        /// The deciding switch.
        node: NodeId,
        /// The twice-requested channel.
        channel: ChannelId,
    },
    /// The worm was holding (or requested) a channel that died mid-run —
    /// a live-reconfiguration fault event killed the message, releasing
    /// every channel it had reserved. Unlike the other variants this is a
    /// *per-message* failure, not a run abort: the surviving traffic keeps
    /// flowing and the message is recorded in
    /// [`MessageResult::failure`].
    TornDown {
        /// The killed message.
        msg: MsgId,
        /// The dead channel that doomed it.
        channel: ChannelId,
    },
    /// A completion hook submitted an invalid follow-up message (bad
    /// spec, or a generation time before the completion instant). The
    /// hook — not the engine or the routing algorithm — broke its
    /// contract; the run aborts with this diagnosis instead of panicking.
    HookSpec {
        /// The completed message whose hook misbehaved.
        msg: MsgId,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Route { msg, node, error } => {
                write!(f, "routing failed for {msg} at {node}: {error}")
            }
            SimError::Misroute { msg, at } => write!(f, "{msg} misrouted to {at}"),
            SimError::EmptyDecision { msg, node } => {
                write!(f, "routing returned no channels for {msg} at {node}")
            }
            SimError::ForeignChannel { msg, node, channel } => {
                write!(f, "{msg} requested {channel}, which does not leave {node}")
            }
            SimError::DuplicateRequest { msg, node, channel } => {
                write!(f, "{msg} requested {channel} twice at {node}")
            }
            SimError::TornDown { msg, channel } => {
                write!(f, "{msg} torn down: {channel} died mid-flight")
            }
            SimError::HookSpec { msg } => {
                write!(f, "completion hook for {msg} submitted an invalid message")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// How a message failed terminally in a live-reconfiguration run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureKind {
    /// The worm was killed mid-flight: it held, requested, or ran into a
    /// channel that a fault event destroyed.
    TornDown,
    /// The message was rejected at its source before any flit moved: the
    /// current labeling cannot reach a destination (lost to the dead
    /// zone), or the source's own injection link is gone.
    Unreachable,
}

/// A per-message terminal failure (live-reconfiguration runs only; on a
/// static network messages either complete or the run deadlocks/aborts).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MessageFailure {
    /// When the message was killed or rejected.
    pub at: Time,
    /// Coarse classification for accounting.
    pub kind: FailureKind,
    /// The precise typed reason ([`SimError::TornDown`], or
    /// [`SimError::Route`] for a routing dead-end / unreachable
    /// destination).
    pub error: SimError,
}

/// Result of one message.
#[derive(Debug, Clone)]
pub struct MessageResult {
    /// The submitted spec.
    pub spec: MessageSpec,
    /// Tail arrival time at the last destination; `None` if the run ended
    /// (deadlock / event cap) before delivery completed.
    pub completed_at: Option<Time>,
    /// Per-destination tail arrival times, parallel to `spec.dests`.
    pub dest_done_at: Vec<Option<Time>>,
    /// Terminal failure, if a mid-run fault killed or rejected this
    /// message (`None` on static networks and for delivered messages).
    pub failure: Option<MessageFailure>,
}

impl MessageResult {
    /// End-to-end latency per the paper's §4 definition: from `gen_time`
    /// (send initiation, before startup) to the last tail arrival.
    pub fn latency(&self) -> Option<Duration> {
        self.completed_at.map(|t| t.since(self.spec.gen_time))
    }

    /// Latency to a particular destination.
    pub fn latency_to(&self, dest: NodeId) -> Option<Duration> {
        let i = self.spec.dests.iter().position(|d| *d == dest)?;
        self.dest_done_at[i].map(|t| t.since(self.spec.gen_time))
    }

    /// True once every destination received the tail flit.
    pub fn is_complete(&self) -> bool {
        self.completed_at.is_some()
    }

    /// True when a mid-run fault killed this worm in flight.
    pub fn is_torn_down(&self) -> bool {
        self.failure
            .is_some_and(|f| f.kind == FailureKind::TornDown)
    }

    /// True when the message was rejected at the source as unreachable.
    pub fn is_unreachable(&self) -> bool {
        self.failure
            .is_some_and(|f| f.kind == FailureKind::Unreachable)
    }
}

/// Why and where a run was declared deadlocked.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeadlockInfo {
    /// Simulation time at detection.
    pub detected_at: Time,
    /// Last time any real flit made progress.
    pub last_progress: Time,
    /// Messages still incomplete at detection.
    pub stuck_messages: Vec<MsgId>,
    /// True when detection came from event-queue exhaustion (hard deadlock
    /// with no bubble traffic); false when the progress watchdog fired.
    pub queue_exhausted: bool,
}

/// Aggregate event/flit counters for one run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counters {
    /// Events processed by the engine loop.
    pub events: u64,
    /// Flit wire crossings (including bubbles).
    pub wire_transfers: u64,
    /// Bubble flits created at branch routers.
    pub bubbles_created: u64,
    /// Real flits absorbed by destination processors.
    pub flits_delivered: u64,
    /// Messages completed.
    pub messages_completed: u64,
    /// Channel acquisitions performed.
    pub acquisitions: u64,
    /// Segment/header-state lookups on the event path. Before the arena
    /// refactor each of these was a hash-map probe; now each is an array
    /// index into a slab — the counter sizes the per-event win.
    pub seg_lookups: u64,
    /// Messages killed mid-flight by a fault event (live runs only).
    pub messages_torn_down: u64,
    /// Messages rejected at the source as unreachable (live runs only).
    pub messages_unreachable: u64,
    /// Bidirectional links killed by fault events during the run.
    pub links_killed: u64,
    /// Which rare engine mechanisms the run exercised (novelty bitset +
    /// watermarks). Lives inside `Counters` so the queue-equivalence
    /// suite pins it identical across event-queue implementations.
    pub coverage: crate::coverage::CoverageSet,
}

/// Everything a finished (or aborted) run reports.
#[derive(Debug, Clone)]
pub struct SimOutcome {
    /// Per-message results, indexed by [`MsgId`].
    pub messages: Vec<MessageResult>,
    /// Deadlock report, if the run did not complete cleanly.
    pub deadlock: Option<DeadlockInfo>,
    /// First simulation error, if the run was aborted on one (misroute,
    /// routing failure, or a routing-contract violation).
    pub error: Option<SimError>,
    /// Simulation clock at the end of the run.
    pub end_time: Time,
    /// True when the network drained completely: no deadlock, no
    /// run-aborting error, every channel idle and every segment and
    /// header retired when the event queue emptied. This is the fuzzer's
    /// quiescence oracle — stronger than `all_accounted`, which only
    /// checks per-message verdicts.
    pub quiescent: bool,
    /// Aggregate counters.
    pub counters: Counters,
    /// Flits (real + bubble) that crossed each channel, indexed by
    /// [`netgraph::ChannelId`] — per-channel utilization.
    pub channel_crossings: Vec<u64>,
    /// Sorted, deduplicated times at which fault events fired — the epoch
    /// boundaries of a live-reconfiguration run (empty on static runs).
    pub fault_times: Vec<Time>,
    /// Protocol-level trace (empty unless tracing was enabled).
    pub trace: crate::trace::Trace,
    /// Fabric telemetry — gauge time-series plus per-channel congestion
    /// accumulators (`None` unless
    /// [`NetworkSim::enable_metrics`](crate::NetworkSim::enable_metrics)
    /// was called). A pure observer: every other field of this outcome is
    /// byte-identical with metrics on or off.
    pub metrics: Option<spam_metrics::RunMetrics>,
}

/// Per-epoch accounting of a live-reconfiguration run: epoch `e` covers
/// messages generated in `[fault_times[e-1], fault_times[e])` (epoch 0
/// starts at time zero, the last epoch is unbounded).
#[derive(Debug, Clone, PartialEq)]
pub struct EpochStats {
    /// Epoch index (0 = before the first fault).
    pub epoch: usize,
    /// Messages generated during this epoch.
    pub submitted: u64,
    /// ... of which fully delivered.
    pub delivered: u64,
    /// ... of which killed mid-flight by a later (or same-instant) fault.
    pub torn_down: u64,
    /// ... of which rejected at the source as unreachable.
    pub unreachable: u64,
    /// Mean end-to-end latency (µs) of the delivered ones.
    pub mean_latency_us: Option<f64>,
}

impl SimOutcome {
    /// True when every message completed with no deadlock and no error.
    pub fn all_delivered(&self) -> bool {
        self.deadlock.is_none()
            && self.error.is_none()
            && self.messages.iter().all(|m| m.is_complete())
    }

    /// True when the run ended cleanly (no deadlock, no run-aborting
    /// error) and every message is *accounted for* — delivered, torn
    /// down, or unreachable. This is the success criterion for a
    /// live-reconfiguration run, where teardown casualties are expected.
    pub fn all_accounted(&self) -> bool {
        self.deadlock.is_none()
            && self.error.is_none()
            && self
                .messages
                .iter()
                .all(|m| m.is_complete() || m.failure.is_some())
    }

    /// Fraction of submitted messages that were fully delivered.
    pub fn delivered_fraction(&self) -> f64 {
        if self.messages.is_empty() {
            return 1.0;
        }
        let done = self.messages.iter().filter(|m| m.is_complete()).count();
        done as f64 / self.messages.len() as f64
    }

    /// Number of routing epochs the run passed through (fault boundaries
    /// plus one).
    pub fn num_epochs(&self) -> usize {
        self.fault_times.len() + 1
    }

    /// The epoch a message generated at `t` belongs to: messages generated
    /// at or after a fault instant route on the post-fault labeling.
    pub fn epoch_of(&self, t: Time) -> usize {
        self.fault_times.partition_point(|&ft| ft <= t)
    }

    /// Per-epoch delivered / torn-down / unreachable accounting, keyed by
    /// each message's generation time.
    pub fn epoch_stats(&self) -> Vec<EpochStats> {
        let mut stats: Vec<EpochStats> = (0..self.num_epochs())
            .map(|epoch| EpochStats {
                epoch,
                submitted: 0,
                delivered: 0,
                torn_down: 0,
                unreachable: 0,
                mean_latency_us: None,
            })
            .collect();
        let mut lat_sum = vec![0.0f64; self.num_epochs()];
        for m in &self.messages {
            let e = self.epoch_of(m.spec.gen_time);
            stats[e].submitted += 1;
            if let Some(l) = m.latency() {
                stats[e].delivered += 1;
                lat_sum[e] += l.as_us_f64();
            } else if m.is_torn_down() {
                stats[e].torn_down += 1;
            } else if m.is_unreachable() {
                stats[e].unreachable += 1;
            }
        }
        for (s, sum) in stats.iter_mut().zip(lat_sum) {
            if s.delivered > 0 {
                s.mean_latency_us = Some(sum / s.delivered as f64);
            }
        }
        stats
    }

    /// Mean latency in microseconds over completed messages matching
    /// `filter` (e.g. only multicasts, only a warm-up-excluded window).
    pub fn mean_latency_us(&self, filter: impl Fn(&MessageResult) -> bool) -> Option<f64> {
        let mut sum = 0.0;
        let mut n = 0usize;
        for m in &self.messages {
            if let Some(l) = m.latency() {
                if filter(m) {
                    sum += l.as_us_f64();
                    n += 1;
                }
            }
        }
        (n > 0).then(|| sum / n as f64)
    }

    /// Latencies (µs) of completed messages matching `filter`.
    pub fn latencies_us(&self, filter: impl Fn(&MessageResult) -> bool) -> Vec<f64> {
        self.messages
            .iter()
            .filter(|m| filter(m))
            .filter_map(|m| m.latency().map(|l| l.as_us_f64()))
            .collect()
    }

    /// The `k` busiest channels as `(channel, crossings)`, descending.
    pub fn hottest_channels(&self, k: usize) -> Vec<(netgraph::ChannelId, u64)> {
        let mut v: Vec<(netgraph::ChannelId, u64)> = self
            .channel_crossings
            .iter()
            .enumerate()
            .map(|(i, &c)| (netgraph::ChannelId(i as u32), c))
            .collect();
        v.sort_by_key(|&(id, c)| (std::cmp::Reverse(c), id));
        v.truncate(k);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result(gen_us: u64, done_us: Option<u64>) -> MessageResult {
        MessageResult {
            spec: MessageSpec::unicast(NodeId(10), NodeId(11), 8).at(Time::from_us(gen_us)),
            completed_at: done_us.map(Time::from_us),
            dest_done_at: vec![done_us.map(Time::from_us)],
            failure: None,
        }
    }

    #[test]
    fn latency_measured_from_generation() {
        let r = result(5, Some(18));
        assert_eq!(r.latency(), Some(Duration::from_us(13)));
        assert_eq!(r.latency_to(NodeId(11)), Some(Duration::from_us(13)));
        assert_eq!(r.latency_to(NodeId(99)), None);
        assert!(r.is_complete());
        assert!(!result(5, None).is_complete());
    }

    #[test]
    fn outcome_aggregations() {
        let out = SimOutcome {
            messages: vec![result(0, Some(10)), result(0, Some(20)), result(0, None)],
            deadlock: None,
            error: None,
            end_time: Time::from_us(20),
            quiescent: true,
            counters: Counters::default(),
            channel_crossings: vec![5, 9, 1],
            fault_times: Vec::new(),
            trace: Default::default(),
            metrics: None,
        };
        assert!(!out.all_delivered(), "one message incomplete");
        assert_eq!(out.mean_latency_us(|_| true), Some(15.0));
        assert_eq!(out.latencies_us(|_| true), vec![10.0, 20.0]);
        assert_eq!(out.mean_latency_us(|_| false), None);
        assert_eq!(
            out.hottest_channels(2),
            vec![(NodeId(1).0.into(), 9), (netgraph::ChannelId(0), 5)]
        );
    }

    #[test]
    fn epoch_accounting_classifies_by_generation_time() {
        use crate::routing::RouteError;
        let mut torn = result(12, None);
        torn.failure = Some(MessageFailure {
            at: Time::from_us(14),
            kind: FailureKind::TornDown,
            error: SimError::TornDown {
                msg: MsgId(1),
                channel: ChannelId(4),
            },
        });
        let mut unreach = result(15, None);
        unreach.failure = Some(MessageFailure {
            at: Time::from_us(15),
            kind: FailureKind::Unreachable,
            error: SimError::Route {
                msg: MsgId(2),
                node: NodeId(10),
                error: RouteError::UnreachableDestination { dest: NodeId(11) },
            },
        });
        let out = SimOutcome {
            messages: vec![result(0, Some(10)), torn, unreach, result(20, Some(33))],
            deadlock: None,
            error: None,
            end_time: Time::from_us(33),
            quiescent: true,
            counters: Counters::default(),
            channel_crossings: vec![],
            fault_times: vec![Time::from_us(13)],
            trace: Default::default(),
            metrics: None,
        };
        assert_eq!(out.num_epochs(), 2);
        assert_eq!(out.epoch_of(Time::from_us(12)), 0);
        assert_eq!(
            out.epoch_of(Time::from_us(13)),
            1,
            "the fault instant belongs to the new epoch"
        );
        assert!(out.all_accounted(), "every message has a verdict");
        assert!(!out.all_delivered());
        assert_eq!(out.delivered_fraction(), 0.5);
        let stats = out.epoch_stats();
        assert_eq!(stats.len(), 2);
        assert_eq!(
            (stats[0].submitted, stats[0].delivered, stats[0].torn_down),
            (2, 1, 1)
        );
        assert_eq!(stats[0].mean_latency_us, Some(10.0));
        assert_eq!(
            (stats[1].submitted, stats[1].delivered, stats[1].unreachable),
            (2, 1, 1)
        );
        assert_eq!(stats[1].mean_latency_us, Some(13.0));
        // The torn message carries the typed TornDown error.
        assert!(out.messages[1].is_torn_down());
        assert!(!out.messages[1].is_unreachable());
        assert!(out.messages[2].is_unreachable());
        assert!(matches!(
            out.messages[1].failure.unwrap().error,
            SimError::TornDown { .. }
        ));
    }
}
