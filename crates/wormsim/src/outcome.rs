//! Simulation results: per-message records, counters, deadlock reports,
//! and typed simulation errors.

use crate::flit::MsgId;
use crate::message::MessageSpec;
use crate::routing::RouteError;
use desim::{Duration, Time};
use netgraph::{ChannelId, NodeId};
use std::fmt;

/// A typed, run-aborting simulation failure.
///
/// Silent misbehaviour in a simulator produces wrong science; crashing
/// deep inside the event loop produces undiagnosable logs. These errors
/// are the middle path: the engine stops the run at the first violation
/// and reports *what* went wrong and *where*, so e.g. a stale labeling on
/// a degraded network reads as "no legal move from s17 towards s3" rather
/// than a panic backtrace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimError {
    /// The routing algorithm returned a typed failure for this header.
    Route {
        /// The affected message.
        msg: MsgId,
        /// The switch where routing failed.
        node: NodeId,
        /// The algorithm's error.
        error: RouteError,
    },
    /// A real flit reached a processor that is not among its message's
    /// destinations — the routing algorithm steered the worm wrong.
    Misroute {
        /// The misrouted message.
        msg: MsgId,
        /// The processor that wrongly received a flit.
        at: NodeId,
    },
    /// The routing algorithm returned an empty request set.
    EmptyDecision {
        /// The affected message.
        msg: MsgId,
        /// The deciding switch.
        node: NodeId,
    },
    /// The routing algorithm requested a channel that does not leave the
    /// deciding switch.
    ForeignChannel {
        /// The affected message.
        msg: MsgId,
        /// The deciding switch.
        node: NodeId,
        /// The offending channel.
        channel: ChannelId,
    },
    /// The routing algorithm requested the same channel twice in one
    /// decision.
    DuplicateRequest {
        /// The affected message.
        msg: MsgId,
        /// The deciding switch.
        node: NodeId,
        /// The twice-requested channel.
        channel: ChannelId,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Route { msg, node, error } => {
                write!(f, "routing failed for {msg} at {node}: {error}")
            }
            SimError::Misroute { msg, at } => write!(f, "{msg} misrouted to {at}"),
            SimError::EmptyDecision { msg, node } => {
                write!(f, "routing returned no channels for {msg} at {node}")
            }
            SimError::ForeignChannel { msg, node, channel } => {
                write!(f, "{msg} requested {channel}, which does not leave {node}")
            }
            SimError::DuplicateRequest { msg, node, channel } => {
                write!(f, "{msg} requested {channel} twice at {node}")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// Result of one message.
#[derive(Debug, Clone)]
pub struct MessageResult {
    /// The submitted spec.
    pub spec: MessageSpec,
    /// Tail arrival time at the last destination; `None` if the run ended
    /// (deadlock / event cap) before delivery completed.
    pub completed_at: Option<Time>,
    /// Per-destination tail arrival times, parallel to `spec.dests`.
    pub dest_done_at: Vec<Option<Time>>,
}

impl MessageResult {
    /// End-to-end latency per the paper's §4 definition: from `gen_time`
    /// (send initiation, before startup) to the last tail arrival.
    pub fn latency(&self) -> Option<Duration> {
        self.completed_at.map(|t| t.since(self.spec.gen_time))
    }

    /// Latency to a particular destination.
    pub fn latency_to(&self, dest: NodeId) -> Option<Duration> {
        let i = self.spec.dests.iter().position(|d| *d == dest)?;
        self.dest_done_at[i].map(|t| t.since(self.spec.gen_time))
    }

    /// True once every destination received the tail flit.
    pub fn is_complete(&self) -> bool {
        self.completed_at.is_some()
    }
}

/// Why and where a run was declared deadlocked.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeadlockInfo {
    /// Simulation time at detection.
    pub detected_at: Time,
    /// Last time any real flit made progress.
    pub last_progress: Time,
    /// Messages still incomplete at detection.
    pub stuck_messages: Vec<MsgId>,
    /// True when detection came from event-queue exhaustion (hard deadlock
    /// with no bubble traffic); false when the progress watchdog fired.
    pub queue_exhausted: bool,
}

/// Aggregate event/flit counters for one run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counters {
    /// Events processed by the engine loop.
    pub events: u64,
    /// Flit wire crossings (including bubbles).
    pub wire_transfers: u64,
    /// Bubble flits created at branch routers.
    pub bubbles_created: u64,
    /// Real flits absorbed by destination processors.
    pub flits_delivered: u64,
    /// Messages completed.
    pub messages_completed: u64,
    /// Channel acquisitions performed.
    pub acquisitions: u64,
}

/// Everything a finished (or aborted) run reports.
#[derive(Debug, Clone)]
pub struct SimOutcome {
    /// Per-message results, indexed by [`MsgId`].
    pub messages: Vec<MessageResult>,
    /// Deadlock report, if the run did not complete cleanly.
    pub deadlock: Option<DeadlockInfo>,
    /// First simulation error, if the run was aborted on one (misroute,
    /// routing failure, or a routing-contract violation).
    pub error: Option<SimError>,
    /// Simulation clock at the end of the run.
    pub end_time: Time,
    /// Aggregate counters.
    pub counters: Counters,
    /// Flits (real + bubble) that crossed each channel, indexed by
    /// [`netgraph::ChannelId`] — per-channel utilization.
    pub channel_crossings: Vec<u64>,
    /// Protocol-level trace (empty unless tracing was enabled).
    pub trace: crate::trace::Trace,
}

impl SimOutcome {
    /// True when every message completed with no deadlock and no error.
    pub fn all_delivered(&self) -> bool {
        self.deadlock.is_none()
            && self.error.is_none()
            && self.messages.iter().all(|m| m.is_complete())
    }

    /// Mean latency in microseconds over completed messages matching
    /// `filter` (e.g. only multicasts, only a warm-up-excluded window).
    pub fn mean_latency_us(&self, filter: impl Fn(&MessageResult) -> bool) -> Option<f64> {
        let mut sum = 0.0;
        let mut n = 0usize;
        for m in &self.messages {
            if let Some(l) = m.latency() {
                if filter(m) {
                    sum += l.as_us_f64();
                    n += 1;
                }
            }
        }
        (n > 0).then(|| sum / n as f64)
    }

    /// Latencies (µs) of completed messages matching `filter`.
    pub fn latencies_us(&self, filter: impl Fn(&MessageResult) -> bool) -> Vec<f64> {
        self.messages
            .iter()
            .filter(|m| filter(m))
            .filter_map(|m| m.latency().map(|l| l.as_us_f64()))
            .collect()
    }

    /// The `k` busiest channels as `(channel, crossings)`, descending.
    pub fn hottest_channels(&self, k: usize) -> Vec<(netgraph::ChannelId, u64)> {
        let mut v: Vec<(netgraph::ChannelId, u64)> = self
            .channel_crossings
            .iter()
            .enumerate()
            .map(|(i, &c)| (netgraph::ChannelId(i as u32), c))
            .collect();
        v.sort_by_key(|&(id, c)| (std::cmp::Reverse(c), id));
        v.truncate(k);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result(gen_us: u64, done_us: Option<u64>) -> MessageResult {
        MessageResult {
            spec: MessageSpec::unicast(NodeId(10), NodeId(11), 8).at(Time::from_us(gen_us)),
            completed_at: done_us.map(Time::from_us),
            dest_done_at: vec![done_us.map(Time::from_us)],
        }
    }

    #[test]
    fn latency_measured_from_generation() {
        let r = result(5, Some(18));
        assert_eq!(r.latency(), Some(Duration::from_us(13)));
        assert_eq!(r.latency_to(NodeId(11)), Some(Duration::from_us(13)));
        assert_eq!(r.latency_to(NodeId(99)), None);
        assert!(r.is_complete());
        assert!(!result(5, None).is_complete());
    }

    #[test]
    fn outcome_aggregations() {
        let out = SimOutcome {
            messages: vec![result(0, Some(10)), result(0, Some(20)), result(0, None)],
            deadlock: None,
            error: None,
            end_time: Time::from_us(20),
            counters: Counters::default(),
            channel_crossings: vec![5, 9, 1],
            trace: Default::default(),
        };
        assert!(!out.all_delivered(), "one message incomplete");
        assert_eq!(out.mean_latency_us(|_| true), Some(15.0));
        assert_eq!(out.latencies_us(|_| true), vec![10.0, 20.0]);
        assert_eq!(out.mean_latency_us(|_| false), None);
        assert_eq!(
            out.hottest_channels(2),
            vec![(NodeId(1).0.into(), 9), (netgraph::ChannelId(0), 5)]
        );
    }
}
