//! Optional event tracing: a structured record of the protocol-level
//! actions a run performed, used by behavioural tests (e.g. replaying the
//! paper's §3.2 Figure 1 walkthrough), by debugging sessions, and by the
//! analysis utilities in `spam-core` (root hot-spot measurements).
//!
//! Tracing is off by default — the hot simulation loops append nothing —
//! and is enabled per run with [`crate::NetworkSim::enable_trace`].

use crate::flit::MsgId;
use desim::Time;
use netgraph::{ChannelId, NodeId};
use spam_collections::InlineVec;

/// Channel set carried by a trace event. Requests and acquisitions list
/// one channel per branch; fanout past the inline capacity spills to the
/// heap, so enabled tracing stays allocation-free for the common degrees.
pub type ChannelList = InlineVec<ChannelId, 4>;

/// One protocol-level action.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent {
    /// A worm's startup completed at its source processor.
    SourceReady {
        /// Message.
        msg: MsgId,
        /// Source processor.
        src: NodeId,
        /// When.
        at: Time,
    },
    /// A header finished router setup and atomically enqueued requests.
    Requested {
        /// Message.
        msg: MsgId,
        /// The router.
        node: NodeId,
        /// Channels requested (OCRQ enqueue order).
        channels: ChannelList,
        /// When.
        at: Time,
    },
    /// All-or-nothing acquisition succeeded; header replicated.
    Acquired {
        /// Message.
        msg: MsgId,
        /// The router (or source processor).
        node: NodeId,
        /// Channels now owned.
        channels: ChannelList,
        /// When.
        at: Time,
    },
    /// A worm's header flit finished crossing a channel's wire and entered
    /// the input buffer at the downstream node — the span boundary between
    /// wire transit on one hop and router setup at the next.
    HeaderArrived {
        /// Message.
        msg: MsgId,
        /// The channel whose wire the header just crossed.
        channel: ChannelId,
        /// When.
        at: Time,
    },
    /// A bubble flit was injected into a free output buffer because a
    /// sibling held a blocked real flit (asynchronous replication).
    Bubble {
        /// Message.
        msg: MsgId,
        /// The branch router.
        node: NodeId,
        /// The channel receiving the bubble.
        channel: ChannelId,
        /// When.
        at: Time,
    },
    /// The tail was replicated; the channels were released.
    Released {
        /// Message.
        msg: MsgId,
        /// The router.
        node: NodeId,
        /// Channels released.
        channels: ChannelList,
        /// When.
        at: Time,
    },
    /// The tail flit reached a destination processor.
    DeliveredTail {
        /// Message.
        msg: MsgId,
        /// The destination.
        dest: NodeId,
        /// When.
        at: Time,
    },
    /// A scheduled fault event killed a bidirectional link.
    LinkDown {
        /// Forward channel of the dead link (its reverse died too).
        channel: ChannelId,
        /// When.
        at: Time,
    },
    /// A worm was torn down: a fault destroyed a channel it was holding,
    /// waiting on, or routing into; all its reservations were released.
    TornDown {
        /// The killed message.
        msg: MsgId,
        /// The dead channel that doomed it.
        channel: ChannelId,
        /// When.
        at: Time,
    },
}

impl TraceEvent {
    /// The message this event belongs to; `None` for network-level events
    /// (fault injections), which concern no single message.
    pub fn msg(&self) -> Option<MsgId> {
        match self {
            TraceEvent::SourceReady { msg, .. }
            | TraceEvent::Requested { msg, .. }
            | TraceEvent::Acquired { msg, .. }
            | TraceEvent::HeaderArrived { msg, .. }
            | TraceEvent::Bubble { msg, .. }
            | TraceEvent::Released { msg, .. }
            | TraceEvent::TornDown { msg, .. }
            | TraceEvent::DeliveredTail { msg, .. } => Some(*msg),
            TraceEvent::LinkDown { .. } => None,
        }
    }

    /// The timestamp.
    pub fn at(&self) -> Time {
        match self {
            TraceEvent::SourceReady { at, .. }
            | TraceEvent::Requested { at, .. }
            | TraceEvent::Acquired { at, .. }
            | TraceEvent::HeaderArrived { at, .. }
            | TraceEvent::Bubble { at, .. }
            | TraceEvent::Released { at, .. }
            | TraceEvent::DeliveredTail { at, .. }
            | TraceEvent::LinkDown { at, .. }
            | TraceEvent::TornDown { at, .. } => *at,
        }
    }
}

/// A recorded trace with query helpers.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// Events in emission order (chronological; ties in engine order).
    pub events: Vec<TraceEvent>,
}

impl Trace {
    /// Events of one message, in order.
    pub fn of_msg(&self, msg: MsgId) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter().filter(move |e| e.msg() == Some(msg))
    }

    /// The sequence of routers at which `msg` made requests, in order —
    /// the header's itinerary.
    pub fn itinerary(&self, msg: MsgId) -> Vec<NodeId> {
        self.of_msg(msg)
            .filter_map(|e| match e {
                TraceEvent::Requested { node, .. } => Some(*node),
                _ => None,
            })
            .collect()
    }

    /// Channels requested by `msg` at `node`, if it made a request there.
    pub fn requests_at(&self, msg: MsgId, node: NodeId) -> Option<Vec<ChannelId>> {
        self.of_msg(msg).find_map(|e| match e {
            TraceEvent::Requested {
                node: n, channels, ..
            } if *n == node => Some(channels.to_vec()),
            _ => None,
        })
    }

    /// All `(node, channel)` pairs where `msg` received bubble flits.
    pub fn bubbles(&self, msg: MsgId) -> Vec<(NodeId, ChannelId)> {
        self.of_msg(msg)
            .filter_map(|e| match e {
                TraceEvent::Bubble { node, channel, .. } => Some((*node, *channel)),
                _ => None,
            })
            .collect()
    }

    /// Tail delivery time at `dest` for `msg`.
    pub fn delivered_at(&self, msg: MsgId, dest: NodeId) -> Option<Time> {
        self.of_msg(msg).find_map(|e| match e {
            TraceEvent::DeliveredTail { dest: d, at, .. } if *d == dest => Some(*at),
            _ => None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Trace {
        Trace {
            events: vec![
                TraceEvent::SourceReady {
                    msg: MsgId(0),
                    src: NodeId(9),
                    at: Time::from_us(10),
                },
                TraceEvent::Requested {
                    msg: MsgId(0),
                    node: NodeId(1),
                    channels: ChannelList::from_slice(&[ChannelId(4)]),
                    at: Time::from_ns(10_050),
                },
                TraceEvent::Requested {
                    msg: MsgId(0),
                    node: NodeId(3),
                    channels: ChannelList::from_slice(&[ChannelId(8), ChannelId(10)]),
                    at: Time::from_ns(10_100),
                },
                TraceEvent::Bubble {
                    msg: MsgId(0),
                    node: NodeId(3),
                    channel: ChannelId(10),
                    at: Time::from_ns(10_200),
                },
                TraceEvent::DeliveredTail {
                    msg: MsgId(0),
                    dest: NodeId(7),
                    at: Time::from_ns(12_000),
                },
                TraceEvent::Requested {
                    msg: MsgId(1),
                    node: NodeId(1),
                    channels: ChannelList::from_slice(&[ChannelId(2)]),
                    at: Time::from_ns(10_060),
                },
            ],
        }
    }

    #[test]
    fn itinerary_orders_requests() {
        let t = sample();
        assert_eq!(t.itinerary(MsgId(0)), vec![NodeId(1), NodeId(3)]);
        assert_eq!(t.itinerary(MsgId(1)), vec![NodeId(1)]);
        assert_eq!(t.itinerary(MsgId(9)), Vec::<NodeId>::new());
    }

    #[test]
    fn requests_and_bubbles_queryable() {
        let t = sample();
        assert_eq!(
            t.requests_at(MsgId(0), NodeId(3)),
            Some(vec![ChannelId(8), ChannelId(10)])
        );
        assert_eq!(t.requests_at(MsgId(0), NodeId(5)), None);
        assert_eq!(t.bubbles(MsgId(0)), vec![(NodeId(3), ChannelId(10))]);
        assert!(t.bubbles(MsgId(1)).is_empty());
    }

    #[test]
    fn delivery_lookup() {
        let t = sample();
        assert_eq!(
            t.delivered_at(MsgId(0), NodeId(7)),
            Some(Time::from_ns(12_000))
        );
        assert_eq!(t.delivered_at(MsgId(0), NodeId(8)), None);
        assert_eq!(t.events[0].at(), Time::from_us(10));
        assert_eq!(t.events[0].msg(), Some(MsgId(0)));
    }
}
