//! Mid-run engine checkpointing: a complete, versioned serialization of
//! [`NetworkSim`]'s live state, plus the run-loop driver that takes
//! snapshots on a fixed sim-time cadence.
//!
//! ## Design
//!
//! * **Pure observer.** Checkpoints ride a [`desim::Ticker`] beside the
//!   event queue, exactly like the telemetry sampler: nothing is ever
//!   scheduled, so the event stream — and every digest-pinned outcome
//!   field — is byte-identical with checkpointing on or off.
//! * **Complete state.** A snapshot captures the schedule (clock,
//!   sequence counter, and every pending event under its original
//!   `(time, seq)` key), all channel state, message state, both slab
//!   arenas *raw* (slot generations and free-list order included — a
//!   resumed run hands out the same `SlotId`s the original would), the
//!   counters and coverage record, the trace, the telemetry rings, the
//!   completion hook's state, and the checkpointer's own cadence.
//!   `run == resume(checkpoint(run))` holds exactly.
//! * **Typed failure.** Restoring from truncated, corrupt, or
//!   mismatched input returns a [`SnapshotError`]; this module never
//!   panics on bad bytes (the container checksum catches random
//!   corruption up front, and every structural check here is an error
//!   path, not an assert).
//!
//! The container format (magic, version, sections, checksum trailer)
//! is defined by [`spam_snapshot`]; this module defines the section
//! layout for the engine.

use super::*;
use spam_snapshot::{SnapReader, SnapWriter, SnapshotError};
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

const SECT_META: u32 = 1;
const SECT_SCHED: u32 = 2;
const SECT_CHANS: u32 = 3;
const SECT_MSGS: u32 = 4;
const SECT_SEGS: u32 = 5;
const SECT_HEADERS: u32 = 6;
const SECT_ENGINE: u32 = 7;
const SECT_TRACE: u32 = 8;
const SECT_METRICS: u32 = 9;
const SECT_HOOK: u32 = 10;

/// Shared digest ledger: one `(sim_time_ns, checksum)` row per checkpoint.
pub type DigestLedger = Arc<Mutex<Vec<(u64, u64)>>>;
/// Shared cell holding the most recent snapshot as `(sim_time_ns, bytes)`.
pub type LatestCell = Arc<Mutex<Option<(u64, Vec<u8>)>>>;
/// Shared log collecting every snapshot as `(sim_time_ns, bytes)`.
pub type SnapshotLog = Arc<Mutex<Vec<(u64, Vec<u8>)>>>;

/// Where periodic checkpoints go. All variants are cheap for the run
/// loop; the shared cells let callers read results after `run` (which
/// consumes the simulator).
pub enum CheckpointSink {
    /// Record only the digest ledger: `(sim_time_ns, checksum)` per
    /// checkpoint, no snapshot bytes retained. The cheapest sink — the
    /// checkpoint-equivalence oracle compares two runs' ledgers.
    Digests(DigestLedger),
    /// Keep the most recent snapshot's bytes (crash-recovery in memory).
    Latest(LatestCell),
    /// Keep every snapshot — the divergence bisector's input.
    Keep(SnapshotLog),
    /// Atomically persist the most recent snapshot to this path (write a
    /// sibling `.tmp`, then rename), best-effort: an I/O failure skips
    /// that checkpoint rather than perturbing or aborting the run.
    File(PathBuf),
}

impl CheckpointSink {
    /// A digest-ledger sink plus the shared cell to read it from after
    /// the run.
    pub fn digests() -> (Self, DigestLedger) {
        let cell = Arc::new(Mutex::new(Vec::with_capacity(256)));
        (CheckpointSink::Digests(cell.clone()), cell)
    }

    /// A latest-snapshot sink plus the shared cell holding the bytes.
    pub fn latest() -> (Self, LatestCell) {
        let cell = Arc::new(Mutex::new(None));
        (CheckpointSink::Latest(cell.clone()), cell)
    }

    /// A keep-everything sink plus the shared cell collecting snapshots.
    pub fn keep_all() -> (Self, SnapshotLog) {
        let cell = Arc::new(Mutex::new(Vec::new()));
        (CheckpointSink::Keep(cell.clone()), cell)
    }

    fn store(&self, at_ns: u64, bytes: &[u8]) {
        match self {
            CheckpointSink::Digests(cell) => {
                if let Ok(mut v) = cell.lock() {
                    v.push((at_ns, spam_snapshot::fnv1a(bytes)));
                }
            }
            CheckpointSink::Latest(cell) => {
                if let Ok(mut v) = cell.lock() {
                    match v.as_mut() {
                        // Reuse the previous checkpoint's allocation.
                        Some((at, buf)) => {
                            *at = at_ns;
                            buf.clear();
                            buf.extend_from_slice(bytes);
                        }
                        None => *v = Some((at_ns, bytes.to_vec())),
                    }
                }
            }
            CheckpointSink::Keep(cell) => {
                if let Ok(mut v) = cell.lock() {
                    v.push((at_ns, bytes.to_vec()));
                }
            }
            CheckpointSink::File(path) => {
                let tmp = path.with_extension("snap.tmp");
                if std::fs::write(&tmp, bytes).is_ok() {
                    let _ = std::fs::rename(&tmp, path);
                }
            }
        }
    }
}

/// Live checkpointing state (see [`NetworkSim::enable_checkpoints`]).
/// The writer buffer is allocated once and reused for every snapshot,
/// so steady-state checkpointing through a [`CheckpointSink::Digests`]
/// sink allocates nothing.
pub(crate) struct CheckpointState {
    pub(crate) ticker: Ticker,
    sink: CheckpointSink,
    writer: SnapWriter,
    /// Set on the first encode failure (e.g. a routing algorithm with no
    /// header codec): checkpointing disables itself rather than
    /// perturbing or aborting the run. The last error is kept for
    /// diagnosis via the engine's debug assertions in tests.
    dead: Option<SnapshotError>,
}

impl<'a, R: RoutingAlgorithm> NetworkSim<'a, R> {
    /// Enables periodic full-state checkpointing every `every` of
    /// simulation time, delivering snapshots to `sink`. A pure observer:
    /// the simulated outcome is byte-identical with checkpointing on or
    /// off. The snapshot buffer is preallocated here and reused for
    /// every checkpoint.
    ///
    /// # Panics
    ///
    /// Panics on a zero cadence — that ticker never advances.
    pub fn enable_checkpoints(&mut self, every: Duration, sink: CheckpointSink) {
        self.checkpoint = Some(Box::new(CheckpointState {
            ticker: Ticker::every(every),
            sink,
            writer: SnapWriter::with_capacity(16 * 1024),
            dead: None,
        }));
    }

    /// Replaces the sink of an already-enabled checkpointer without
    /// touching its cadence — the call a restored run uses to re-point
    /// checkpoints at its own ledger or file.
    pub fn set_checkpoint_sink(&mut self, sink: CheckpointSink) {
        if let Some(cs) = self.checkpoint.as_mut() {
            cs.sink = sink;
        }
    }

    /// Fires every due checkpoint tick `<= upto` (the timestamp of the
    /// event about to be handled). Engine state is constant between
    /// events, so a multi-tick drain encodes once, stamped at the last
    /// due instant; the snapshot stores the *advanced* ticker, so a
    /// resumed run's ledger lines up with the original's after the
    /// resume point.
    pub(crate) fn checkpoint_through(&mut self, upto: Time, hook: &dyn CompletionHook) {
        let Some(mut cs) = self.checkpoint.take() else {
            return;
        };
        if cs.dead.is_none() && cs.ticker.next_at() <= upto {
            let mut last = cs.ticker.next_at();
            cs.ticker.drain_through(upto, |at| last = at);
            let ckpt = Some(cs.ticker);
            match self.encode_snapshot_inner(&mut cs.writer, hook, ckpt) {
                Ok(()) => {
                    let bytes = cs.writer.seal();
                    cs.sink.store(last.as_ns(), bytes);
                }
                Err(e) => cs.dead = Some(e),
            }
        }
        self.checkpoint = Some(cs);
    }

    /// Serializes the engine's complete current state into `w` (the
    /// caller seals and stores the buffer). `hook` contributes the
    /// completion hook's mutable state; pass [`NoHook`] via
    /// [`Self::snapshot`] when no hook is in play.
    pub fn snapshot_with_hook(
        &self,
        w: &mut SnapWriter,
        hook: &dyn CompletionHook,
    ) -> Result<(), SnapshotError> {
        let ckpt = self.checkpoint.as_ref().map(|c| c.ticker);
        self.encode_snapshot_inner(w, hook, ckpt)
    }

    /// [`Self::snapshot_with_hook`] with no completion hook.
    pub fn snapshot(&self, w: &mut SnapWriter) -> Result<(), SnapshotError> {
        self.snapshot_with_hook(w, &NoHook)
    }

    fn encode_snapshot_inner(
        &self,
        w: &mut SnapWriter,
        hook: &dyn CompletionHook,
        ckpt: Option<Ticker>,
    ) -> Result<(), SnapshotError> {
        w.begin();

        let s = w.begin_section(SECT_META);
        w.put_u64(topo_fingerprint(self.topo));
        w.put_u64(self.cfg.latency.startup.as_ns());
        w.put_u64(self.cfg.latency.router_setup.as_ns());
        w.put_u64(self.cfg.latency.channel_prop.as_ns());
        w.put_usize(self.cfg.input_buffer_flits);
        w.put_usize(self.cfg.output_buffer_flits);
        w.put_u64(self.cfg.watchdog.as_ns());
        w.put_u64(self.cfg.max_events);
        w.put_u64(u64::from(self.cfg.extra_header_flits));
        w.put_str(self.routing.snapshot_name());
        w.end_section(s);

        let s = w.begin_section(SECT_SCHED);
        w.put_u64(self.sched.now().as_ns());
        w.put_u64(self.sched.scheduled_count());
        w.put_len(self.sched.len());
        self.sched.snapshot_each(|t, seq, e| {
            w.put_u64(t.as_ns());
            w.put_u64(seq);
            put_event(w, e);
        });
        w.end_section(s);

        let s = w.begin_section(SECT_CHANS);
        w.put_len(self.chans.len());
        for c in &self.chans {
            w.put_len(c.out_buf.len());
            for f in &c.out_buf {
                put_flit(w, f);
            }
            w.put_len(c.in_buf.len());
            for f in &c.in_buf {
                put_flit(w, f);
            }
            w.put_bool(c.wire_busy);
            w.put_u8(c.reserved_in);
            w.put_bool(c.owner.is_some());
            if let Some((m, sid)) = c.owner {
                w.put_u32(m.0);
                put_slot(w, sid);
            }
            w.put_len(c.ocrq.len());
            for &(m, sid) in &c.ocrq {
                w.put_u32(m.0);
                put_slot(w, sid);
            }
            w.put_bool(c.seg.is_some());
            if let Some(sid) = c.seg {
                put_slot(w, sid);
            }
            w.put_len(c.hdrs.len());
            for &(m, hid) in c.hdrs.iter() {
                w.put_u32(m.0);
                put_slot(w, hid);
            }
            w.put_bool(c.route_pending);
            w.put_u64(c.crossings);
        }
        w.end_section(s);

        let s = w.begin_section(SECT_MSGS);
        w.put_len(self.msgs.len());
        for m in &self.msgs {
            put_spec(w, &m.spec);
            w.put_u32(m.worm_len);
            w.put_len(m.dests.len());
            for d in &m.dests {
                w.put_u32(d.next_seq);
                w.put_opt_u64(d.done_at.map(Time::as_ns));
            }
            w.put_usize(m.remaining);
            w.put_opt_u64(m.completed_at.map(Time::as_ns));
            w.put_bool(m.failure.is_some());
            if let Some(f) = &m.failure {
                w.put_u64(f.at.as_ns());
                w.put_u8(match f.kind {
                    FailureKind::TornDown => 0,
                    FailureKind::Unreachable => 1,
                });
                put_sim_error(w, &f.error);
            }
            w.put_len(m.live_segs.len());
            for &sid in m.live_segs.iter() {
                put_slot(w, sid);
            }
        }
        w.end_section(s);

        let s = w.begin_section(SECT_SEGS);
        w.put_len(self.segs.num_slots());
        self.segs.snapshot_slots(|gen, seg| {
            w.put_u32(gen);
            w.put_bool(seg.is_some());
            if let Some(seg) = seg {
                w.put_u32(seg.msg.0);
                match seg.input {
                    SegInput::Source { next } => {
                        w.put_u8(0);
                        w.put_u32(next);
                    }
                    SegInput::Channel(ch) => {
                        w.put_u8(1);
                        w.put_u32(ch.0);
                    }
                }
                w.put_len(seg.outputs.len());
                for &ch in seg.outputs.iter() {
                    w.put_u32(ch.0);
                }
                w.put_bool(seg.acquired);
            }
        });
        w.put_len(self.segs.free_list().len());
        for &i in self.segs.free_list() {
            w.put_u32(i);
        }
        w.end_section(s);

        let s = w.begin_section(SECT_HEADERS);
        w.put_len(self.headers.num_slots());
        let mut hdr_err = None;
        self.headers.snapshot_slots(|gen, h| {
            w.put_u32(gen);
            w.put_bool(h.is_some());
            if let Some(h) = h {
                if let Err(e) = self.routing.encode_header(h, w) {
                    hdr_err.get_or_insert(e);
                }
            }
        });
        if let Some(e) = hdr_err {
            return Err(e);
        }
        w.put_len(self.headers.free_list().len());
        for &i in self.headers.free_list() {
            w.put_u32(i);
        }
        w.end_section(s);

        let s = w.begin_section(SECT_ENGINE);
        let c = &self.counters;
        w.put_u64(c.events);
        w.put_u64(c.wire_transfers);
        w.put_u64(c.bubbles_created);
        w.put_u64(c.flits_delivered);
        w.put_u64(c.messages_completed);
        w.put_u64(c.acquisitions);
        w.put_u64(c.seg_lookups);
        w.put_u64(c.messages_torn_down);
        w.put_u64(c.messages_unreachable);
        w.put_u64(c.links_killed);
        w.put_u64(c.coverage.bits);
        w.put_u32(c.coverage.max_branch_fanout);
        w.put_u32(c.coverage.max_ocrq_depth);
        w.put_u32(c.coverage.epochs);
        w.put_u32(c.coverage.wheel_deferrals);
        w.put_u32(c.coverage.max_reattached_nodes);
        // A run-aborting error ends the run before the next checkpoint
        // tick, so live checkpoints never see one; recorded defensively
        // for the standalone snapshot API, and rejected on restore.
        w.put_bool(self.error.is_some());
        w.put_u64(self.last_progress.as_ns());
        w.put_usize(self.active);
        w.put_len(self.pending_completions.len());
        for &m in &self.pending_completions {
            w.put_u32(m.0);
        }
        w.put_len(self.bubble_candidates.len());
        for &sid in &self.bubble_candidates {
            put_slot(w, sid);
        }
        w.put_len(self.dead.len());
        for &d in &self.dead {
            w.put_bool(d);
        }
        w.put_len(self.fault_times.len());
        for &t in &self.fault_times {
            w.put_u64(t.as_ns());
        }
        w.put_bool(ckpt.is_some());
        if let Some(ticker) = ckpt {
            let (period, next) = ticker.parts();
            w.put_u64(period);
            w.put_u64(next);
        }
        w.end_section(s);

        let s = w.begin_section(SECT_TRACE);
        w.put_bool(self.trace.is_some());
        if let Some(tr) = &self.trace {
            w.put_len(tr.events.len());
            for e in &tr.events {
                put_trace_event(w, e);
            }
        }
        w.end_section(s);

        let s = w.begin_section(SECT_METRICS);
        w.put_bool(self.metrics.is_some());
        if let Some(m) = &self.metrics {
            let (period, next) = m.ticker.parts();
            w.put_u64(period);
            w.put_u64(next);
            w.put_u64(m.sample_every_ns);
            let (cap, head, total, buf) = m.series.raw_parts();
            w.put_usize(cap);
            w.put_usize(head);
            w.put_u64(total);
            w.put_len(buf.len());
            for g in buf {
                put_gauge(w, g);
            }
            let (accums, ocrq_last) = m.channels.raw_parts();
            w.put_len(accums.len());
            for a in accums {
                w.put_u64(a.busy_ns);
                w.put_u64(a.acquisitions);
                w.put_u64(a.ocrq_wait_ns);
                w.put_u64(a.header_stalls);
            }
            for &n in ocrq_last {
                w.put_u64(n);
            }
        }
        w.end_section(s);

        let s = w.begin_section(SECT_HOOK);
        hook.encode_state(w);
        w.end_section(s);

        Ok(())
    }

    /// Reconstructs a mid-run simulator from snapshot `bytes`, restoring
    /// the completion hook's state into `hook` (resume the run with
    /// [`Self::run_with_hook`] and the same hook). `topo`, `routing`,
    /// and `cfg` must be rebuilt by the caller exactly as for the
    /// original run — the snapshot carries fingerprints of all three and
    /// refuses a mismatch with [`SnapshotError::ConfigMismatch`]. The
    /// event-queue kind is *not* constrained: pop order is pinned by
    /// `(time, seq)` keys, so a snapshot taken under one queue resumes
    /// identically under the other.
    pub fn restore_with_hook(
        topo: &'a Topology,
        routing: R,
        cfg: SimConfig,
        bytes: &[u8],
        hook: &mut dyn CompletionHook,
    ) -> Result<Self, SnapshotError> {
        let mut r = SnapReader::open(bytes)?;
        let mut sim = NetworkSim::new(topo, routing, cfg);

        read_section(&mut r, SECT_META, |r| {
            if r.get_u64()? != topo_fingerprint(sim.topo) {
                return Err(SnapshotError::ConfigMismatch(
                    "topology differs from the snapshot's",
                ));
            }
            let want = [
                ("startup latency", sim.cfg.latency.startup.as_ns()),
                ("router-setup latency", sim.cfg.latency.router_setup.as_ns()),
                ("channel propagation", sim.cfg.latency.channel_prop.as_ns()),
                ("input buffer depth", sim.cfg.input_buffer_flits as u64),
                ("output buffer depth", sim.cfg.output_buffer_flits as u64),
                ("watchdog", sim.cfg.watchdog.as_ns()),
                ("event cap", sim.cfg.max_events),
                ("extra header flits", u64::from(sim.cfg.extra_header_flits)),
            ];
            for (name, expect) in want {
                if r.get_u64()? != expect {
                    let _ = name;
                    return Err(SnapshotError::ConfigMismatch(
                        "simulation config differs from the snapshot's",
                    ));
                }
            }
            if r.get_str()? != sim.routing.snapshot_name() {
                return Err(SnapshotError::ConfigMismatch(
                    "routing algorithm differs from the snapshot's",
                ));
            }
            Ok(())
        })?;

        read_section(&mut r, SECT_SCHED, |r| {
            let now = Time::from_ns(r.get_u64()?);
            let next_seq = r.get_u64()?;
            let n = r.get_len()?;
            let mut sched = Schedule::restore_empty(sim.cfg.resolved_queue(), now, next_seq);
            for _ in 0..n {
                let at = Time::from_ns(r.get_u64()?);
                let seq = r.get_u64()?;
                let ev = get_event(r)?;
                if at < now || seq >= next_seq {
                    return Err(SnapshotError::Corrupt("pending event key out of range"));
                }
                sched.insert_restored(at, seq, ev);
            }
            sim.sched = sched;
            Ok(())
        })?;

        read_section(&mut r, SECT_CHANS, |r| {
            if r.get_len()? != sim.topo.num_channels() {
                return Err(SnapshotError::Corrupt("channel count mismatch"));
            }
            for c in sim.chans.iter_mut() {
                for _ in 0..r.get_len()? {
                    let f = get_flit(r)?;
                    c.out_buf.push_back(f);
                }
                for _ in 0..r.get_len()? {
                    let f = get_flit(r)?;
                    c.in_buf.push_back(f);
                }
                c.wire_busy = r.get_bool()?;
                c.reserved_in = r.get_u8()?;
                if r.get_bool()? {
                    c.owner = Some((MsgId(r.get_u32()?), get_slot(r)?));
                }
                for _ in 0..r.get_len()? {
                    let m = MsgId(r.get_u32()?);
                    let sid = get_slot(r)?;
                    c.ocrq.push_back((m, sid));
                }
                if r.get_bool()? {
                    c.seg = Some(get_slot(r)?);
                }
                for _ in 0..r.get_len()? {
                    let m = MsgId(r.get_u32()?);
                    let hid = get_slot(r)?;
                    c.hdrs.push((m, hid));
                }
                c.route_pending = r.get_bool()?;
                c.crossings = r.get_u64()?;
            }
            Ok(())
        })?;

        read_section(&mut r, SECT_MSGS, |r| {
            let n = r.get_len()?;
            sim.msgs.reserve(n);
            for _ in 0..n {
                let spec = get_spec(r)?;
                let worm_len = r.get_u32()?;
                let nd = r.get_len()?;
                if nd != spec.dests.len() {
                    return Err(SnapshotError::Corrupt("destination state count mismatch"));
                }
                let mut dests = Vec::with_capacity(nd);
                for _ in 0..nd {
                    dests.push(DestState {
                        next_seq: r.get_u32()?,
                        done_at: r.get_opt_u64()?.map(Time::from_ns),
                    });
                }
                let remaining = r.get_usize()?;
                if remaining > nd {
                    return Err(SnapshotError::Corrupt("remaining exceeds destinations"));
                }
                let completed_at = r.get_opt_u64()?.map(Time::from_ns);
                let failure = if r.get_bool()? {
                    Some(MessageFailure {
                        at: Time::from_ns(r.get_u64()?),
                        kind: match r.get_u8()? {
                            0 => FailureKind::TornDown,
                            1 => FailureKind::Unreachable,
                            _ => return Err(SnapshotError::Corrupt("unknown failure kind")),
                        },
                        error: get_sim_error(r)?,
                    })
                } else {
                    None
                };
                let mut live_segs = InlineVec::new();
                for _ in 0..r.get_len()? {
                    live_segs.push(get_slot(r)?);
                }
                // Derived: the sorted (destination, index) lookup table.
                let mut dest_slot: Vec<(NodeId, u32)> = spec
                    .dests
                    .iter()
                    .enumerate()
                    .map(|(i, d)| (*d, i as u32))
                    .collect();
                dest_slot.sort_unstable_by_key(|&(d, _)| d);
                sim.msgs.push(MsgState {
                    spec,
                    worm_len,
                    dest_slot,
                    dests,
                    remaining,
                    completed_at,
                    failure,
                    live_segs,
                });
            }
            Ok(())
        })?;

        read_section(&mut r, SECT_SEGS, |r| {
            let n = r.get_len()?;
            let mut slots = Vec::with_capacity(n);
            for _ in 0..n {
                let gen = r.get_u32()?;
                let seg = if r.get_bool()? {
                    let msg = MsgId(r.get_u32()?);
                    let input = match r.get_u8()? {
                        0 => SegInput::Source { next: r.get_u32()? },
                        1 => SegInput::Channel(ChannelId(r.get_u32()?)),
                        _ => return Err(SnapshotError::Corrupt("unknown segment input tag")),
                    };
                    let mut outputs = InlineVec::new();
                    for _ in 0..r.get_len()? {
                        outputs.push(ChannelId(r.get_u32()?));
                    }
                    Some(Segment {
                        msg,
                        input,
                        outputs,
                        acquired: r.get_bool()?,
                    })
                } else {
                    None
                };
                slots.push((gen, seg));
            }
            let mut free = Vec::new();
            for _ in 0..r.get_len()? {
                free.push(r.get_u32()?);
            }
            sim.segs = Slab::from_raw_parts(slots, free).map_err(SnapshotError::Corrupt)?;
            Ok(())
        })?;

        read_section(&mut r, SECT_HEADERS, |r| {
            let n = r.get_len()?;
            let mut slots = Vec::with_capacity(n);
            for _ in 0..n {
                let gen = r.get_u32()?;
                let h = if r.get_bool()? {
                    Some(sim.routing.decode_header(r)?)
                } else {
                    None
                };
                slots.push((gen, h));
            }
            let mut free = Vec::new();
            for _ in 0..r.get_len()? {
                free.push(r.get_u32()?);
            }
            sim.headers = Slab::from_raw_parts(slots, free).map_err(SnapshotError::Corrupt)?;
            Ok(())
        })?;

        read_section(&mut r, SECT_ENGINE, |r| {
            let c = &mut sim.counters;
            c.events = r.get_u64()?;
            c.wire_transfers = r.get_u64()?;
            c.bubbles_created = r.get_u64()?;
            c.flits_delivered = r.get_u64()?;
            c.messages_completed = r.get_u64()?;
            c.acquisitions = r.get_u64()?;
            c.seg_lookups = r.get_u64()?;
            c.messages_torn_down = r.get_u64()?;
            c.messages_unreachable = r.get_u64()?;
            c.links_killed = r.get_u64()?;
            c.coverage.bits = r.get_u64()?;
            c.coverage.max_branch_fanout = r.get_u32()?;
            c.coverage.max_ocrq_depth = r.get_u32()?;
            c.coverage.epochs = r.get_u32()?;
            c.coverage.wheel_deferrals = r.get_u32()?;
            c.coverage.max_reattached_nodes = r.get_u32()?;
            if r.get_bool()? {
                return Err(SnapshotError::Corrupt(
                    "snapshot taken after a run-aborting error",
                ));
            }
            sim.last_progress = Time::from_ns(r.get_u64()?);
            sim.active = r.get_usize()?;
            for _ in 0..r.get_len()? {
                sim.pending_completions.push(MsgId(r.get_u32()?));
            }
            for _ in 0..r.get_len()? {
                sim.bubble_candidates.push(get_slot(r)?);
            }
            if r.get_len()? != sim.dead.len() {
                return Err(SnapshotError::Corrupt("death mask length mismatch"));
            }
            for d in sim.dead.iter_mut() {
                *d = r.get_bool()?;
            }
            for _ in 0..r.get_len()? {
                sim.fault_times.push(Time::from_ns(r.get_u64()?));
            }
            sim.checkpoint = if r.get_bool()? {
                let period = r.get_u64()?;
                let next = r.get_u64()?;
                let ticker = Ticker::from_parts(period, next)
                    .ok_or(SnapshotError::Corrupt("zero checkpoint cadence"))?;
                let (sink, _) = CheckpointSink::digests();
                Some(Box::new(CheckpointState {
                    ticker,
                    sink,
                    writer: SnapWriter::with_capacity(16 * 1024),
                    dead: None,
                }))
            } else {
                None
            };
            Ok(())
        })?;

        read_section(&mut r, SECT_TRACE, |r| {
            if r.get_bool()? {
                let n = r.get_len()?;
                let mut events = Vec::with_capacity(n);
                for _ in 0..n {
                    events.push(get_trace_event(r)?);
                }
                sim.trace = Some(Trace { events });
            }
            Ok(())
        })?;

        read_section(&mut r, SECT_METRICS, |r| {
            if r.get_bool()? {
                let period = r.get_u64()?;
                let next = r.get_u64()?;
                let ticker = Ticker::from_parts(period, next)
                    .ok_or(SnapshotError::Corrupt("zero sampling cadence"))?;
                let sample_every_ns = r.get_u64()?;
                let cap = r.get_usize()?;
                let head = r.get_usize()?;
                let total = r.get_u64()?;
                let n = r.get_len()?;
                let mut buf = Vec::with_capacity(n);
                for _ in 0..n {
                    buf.push(get_gauge(r)?);
                }
                let series = GaugeSeries::from_raw_parts(cap, head, total, buf)
                    .map_err(SnapshotError::Corrupt)?;
                let n = r.get_len()?;
                let mut accums = Vec::with_capacity(n);
                for _ in 0..n {
                    accums.push(spam_metrics::ChannelAccum {
                        busy_ns: r.get_u64()?,
                        acquisitions: r.get_u64()?,
                        ocrq_wait_ns: r.get_u64()?,
                        header_stalls: r.get_u64()?,
                    });
                }
                let mut ocrq_last = Vec::with_capacity(n);
                for _ in 0..n {
                    ocrq_last.push(r.get_u64()?);
                }
                let channels = ChannelScoreboard::from_raw_parts(accums, ocrq_last)
                    .map_err(SnapshotError::Corrupt)?;
                sim.metrics = Some(MetricsState {
                    ticker,
                    sample_every_ns,
                    series,
                    channels,
                });
            }
            Ok(())
        })?;

        read_section(&mut r, SECT_HOOK, |r| hook.decode_state(r))?;

        r.finish()?;
        Ok(sim)
    }

    /// [`Self::restore_with_hook`] with no completion hook. Snapshots
    /// taken with a stateful hook fail here with a typed error (the hook
    /// section's bytes go unconsumed).
    pub fn restore(
        topo: &'a Topology,
        routing: R,
        cfg: SimConfig,
        bytes: &[u8],
    ) -> Result<Self, SnapshotError> {
        Self::restore_with_hook(topo, routing, cfg, bytes, &mut NoHook)
    }
}

/// Reads one length-framed section, verifying the decoder consumed
/// exactly the bytes the encoder produced — misaligned external codecs
/// (routing headers, hook state) surface as typed errors here.
fn read_section<T>(
    r: &mut SnapReader,
    tag: u32,
    f: impl FnOnce(&mut SnapReader) -> Result<T, SnapshotError>,
) -> Result<T, SnapshotError> {
    let len = r.expect_section(tag)?;
    let before = r.remaining();
    let v = f(r)?;
    if before - r.remaining() != len {
        return Err(SnapshotError::Corrupt("section length mismatch"));
    }
    Ok(v)
}

/// Structural fingerprint of a topology: node/channel counts, every
/// channel's endpoints, and every node's kind, FNV-1a folded. Two
/// topologies with equal fingerprints are interchangeable for resuming
/// a snapshot.
fn topo_fingerprint(topo: &Topology) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut fold = |v: u64| {
        for b in v.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
    };
    fold(topo.num_nodes() as u64);
    fold(topo.num_channels() as u64);
    for i in 0..topo.num_channels() {
        let c = topo.channel(ChannelId(i as u32));
        fold(u64::from(c.src.0));
        fold(u64::from(c.dst.0));
    }
    for i in 0..topo.num_nodes() {
        fold(u64::from(topo.is_switch(NodeId(i as u32))));
    }
    h
}

fn put_slot(w: &mut SnapWriter, sid: SlotId) {
    w.put_u32(sid.index() as u32);
    w.put_u32(sid.generation());
}

fn get_slot(r: &mut SnapReader) -> Result<SlotId, SnapshotError> {
    let idx = r.get_u32()?;
    let gen = r.get_u32()?;
    Ok(SlotId::from_raw(idx, gen))
}

fn put_event(w: &mut SnapWriter, e: &Event) {
    match *e {
        Event::SourceReady(m) => {
            w.put_u8(0);
            w.put_u32(m.0);
        }
        Event::RouteDecision { msg, in_ch } => {
            w.put_u8(1);
            w.put_u32(msg.0);
            w.put_u32(in_ch.0);
        }
        Event::WireDone(ch) => {
            w.put_u8(2);
            w.put_u32(ch.0);
        }
        Event::LinkDown(ch) => {
            w.put_u8(3);
            w.put_u32(ch.0);
        }
    }
}

fn get_event(r: &mut SnapReader) -> Result<Event, SnapshotError> {
    Ok(match r.get_u8()? {
        0 => Event::SourceReady(MsgId(r.get_u32()?)),
        1 => Event::RouteDecision {
            msg: MsgId(r.get_u32()?),
            in_ch: ChannelId(r.get_u32()?),
        },
        2 => Event::WireDone(ChannelId(r.get_u32()?)),
        3 => Event::LinkDown(ChannelId(r.get_u32()?)),
        _ => return Err(SnapshotError::Corrupt("unknown event tag")),
    })
}

fn put_flit(w: &mut SnapWriter, f: &Flit) {
    w.put_u32(f.msg.0);
    match f.kind {
        FlitKind::Header => w.put_u8(0),
        FlitKind::Data(s) => {
            w.put_u8(1);
            w.put_u32(s);
        }
        FlitKind::Tail(s) => {
            w.put_u8(2);
            w.put_u32(s);
        }
        FlitKind::Bubble => w.put_u8(3),
    }
}

fn get_flit(r: &mut SnapReader) -> Result<Flit, SnapshotError> {
    let msg = MsgId(r.get_u32()?);
    let kind = match r.get_u8()? {
        0 => FlitKind::Header,
        1 => FlitKind::Data(r.get_u32()?),
        2 => FlitKind::Tail(r.get_u32()?),
        3 => FlitKind::Bubble,
        _ => return Err(SnapshotError::Corrupt("unknown flit kind")),
    };
    Ok(Flit { msg, kind })
}

fn put_spec(w: &mut SnapWriter, s: &MessageSpec) {
    w.put_u32(s.src.0);
    w.put_len(s.dests.len());
    for d in &s.dests {
        w.put_u32(d.0);
    }
    w.put_u32(s.len);
    w.put_u64(s.gen_time.as_ns());
    w.put_u64(s.tag);
}

fn get_spec(r: &mut SnapReader) -> Result<MessageSpec, SnapshotError> {
    let src = NodeId(r.get_u32()?);
    let n = r.get_len()?;
    let mut dests = Vec::with_capacity(n);
    for _ in 0..n {
        dests.push(NodeId(r.get_u32()?));
    }
    Ok(MessageSpec {
        src,
        dests,
        len: r.get_u32()?,
        gen_time: Time::from_ns(r.get_u64()?),
        tag: r.get_u64()?,
    })
}

fn put_route_error(w: &mut SnapWriter, e: &crate::routing::RouteError) {
    use crate::routing::RouteError as E;
    match *e {
        E::NoLegalMove { node, target } => {
            w.put_u8(0);
            w.put_u32(node.0);
            w.put_u32(target.0);
        }
        E::NoDestinationSubtree { node } => {
            w.put_u8(1);
            w.put_u32(node.0);
        }
        E::NoPlan { tag, node } => {
            w.put_u8(2);
            w.put_u64(tag);
            w.put_u32(node.0);
        }
        E::NoSuchLink { from, to } => {
            w.put_u8(3);
            w.put_u32(from.0);
            w.put_u32(to.0);
        }
        E::UnreachableDestination { dest } => {
            w.put_u8(4);
            w.put_u32(dest.0);
        }
        E::SourceDisconnected { src } => {
            w.put_u8(5);
            w.put_u32(src.0);
        }
    }
}

fn get_route_error(r: &mut SnapReader) -> Result<crate::routing::RouteError, SnapshotError> {
    use crate::routing::RouteError as E;
    Ok(match r.get_u8()? {
        0 => E::NoLegalMove {
            node: NodeId(r.get_u32()?),
            target: NodeId(r.get_u32()?),
        },
        1 => E::NoDestinationSubtree {
            node: NodeId(r.get_u32()?),
        },
        2 => E::NoPlan {
            tag: r.get_u64()?,
            node: NodeId(r.get_u32()?),
        },
        3 => E::NoSuchLink {
            from: NodeId(r.get_u32()?),
            to: NodeId(r.get_u32()?),
        },
        4 => E::UnreachableDestination {
            dest: NodeId(r.get_u32()?),
        },
        5 => E::SourceDisconnected {
            src: NodeId(r.get_u32()?),
        },
        _ => return Err(SnapshotError::Corrupt("unknown route error tag")),
    })
}

fn put_sim_error(w: &mut SnapWriter, e: &SimError) {
    match *e {
        SimError::Route { msg, node, error } => {
            w.put_u8(0);
            w.put_u32(msg.0);
            w.put_u32(node.0);
            put_route_error(w, &error);
        }
        SimError::Misroute { msg, at } => {
            w.put_u8(1);
            w.put_u32(msg.0);
            w.put_u32(at.0);
        }
        SimError::EmptyDecision { msg, node } => {
            w.put_u8(2);
            w.put_u32(msg.0);
            w.put_u32(node.0);
        }
        SimError::ForeignChannel { msg, node, channel } => {
            w.put_u8(3);
            w.put_u32(msg.0);
            w.put_u32(node.0);
            w.put_u32(channel.0);
        }
        SimError::DuplicateRequest { msg, node, channel } => {
            w.put_u8(4);
            w.put_u32(msg.0);
            w.put_u32(node.0);
            w.put_u32(channel.0);
        }
        SimError::TornDown { msg, channel } => {
            w.put_u8(5);
            w.put_u32(msg.0);
            w.put_u32(channel.0);
        }
        SimError::HookSpec { msg } => {
            w.put_u8(6);
            w.put_u32(msg.0);
        }
    }
}

fn get_sim_error(r: &mut SnapReader) -> Result<SimError, SnapshotError> {
    Ok(match r.get_u8()? {
        0 => SimError::Route {
            msg: MsgId(r.get_u32()?),
            node: NodeId(r.get_u32()?),
            error: get_route_error(r)?,
        },
        1 => SimError::Misroute {
            msg: MsgId(r.get_u32()?),
            at: NodeId(r.get_u32()?),
        },
        2 => SimError::EmptyDecision {
            msg: MsgId(r.get_u32()?),
            node: NodeId(r.get_u32()?),
        },
        3 => SimError::ForeignChannel {
            msg: MsgId(r.get_u32()?),
            node: NodeId(r.get_u32()?),
            channel: ChannelId(r.get_u32()?),
        },
        4 => SimError::DuplicateRequest {
            msg: MsgId(r.get_u32()?),
            node: NodeId(r.get_u32()?),
            channel: ChannelId(r.get_u32()?),
        },
        5 => SimError::TornDown {
            msg: MsgId(r.get_u32()?),
            channel: ChannelId(r.get_u32()?),
        },
        6 => SimError::HookSpec {
            msg: MsgId(r.get_u32()?),
        },
        _ => return Err(SnapshotError::Corrupt("unknown sim error tag")),
    })
}

fn put_channel_list(w: &mut SnapWriter, list: &crate::trace::ChannelList) {
    w.put_len(list.len());
    for &c in list.iter() {
        w.put_u32(c.0);
    }
}

fn get_channel_list(r: &mut SnapReader) -> Result<crate::trace::ChannelList, SnapshotError> {
    let mut list = crate::trace::ChannelList::new();
    for _ in 0..r.get_len()? {
        list.push(ChannelId(r.get_u32()?));
    }
    Ok(list)
}

fn put_trace_event(w: &mut SnapWriter, e: &TraceEvent) {
    match e {
        TraceEvent::SourceReady { msg, src, at } => {
            w.put_u8(0);
            w.put_u32(msg.0);
            w.put_u32(src.0);
            w.put_u64(at.as_ns());
        }
        TraceEvent::Requested {
            msg,
            node,
            channels,
            at,
        } => {
            w.put_u8(1);
            w.put_u32(msg.0);
            w.put_u32(node.0);
            put_channel_list(w, channels);
            w.put_u64(at.as_ns());
        }
        TraceEvent::Acquired {
            msg,
            node,
            channels,
            at,
        } => {
            w.put_u8(2);
            w.put_u32(msg.0);
            w.put_u32(node.0);
            put_channel_list(w, channels);
            w.put_u64(at.as_ns());
        }
        TraceEvent::HeaderArrived { msg, channel, at } => {
            w.put_u8(3);
            w.put_u32(msg.0);
            w.put_u32(channel.0);
            w.put_u64(at.as_ns());
        }
        TraceEvent::Bubble {
            msg,
            node,
            channel,
            at,
        } => {
            w.put_u8(4);
            w.put_u32(msg.0);
            w.put_u32(node.0);
            w.put_u32(channel.0);
            w.put_u64(at.as_ns());
        }
        TraceEvent::Released {
            msg,
            node,
            channels,
            at,
        } => {
            w.put_u8(5);
            w.put_u32(msg.0);
            w.put_u32(node.0);
            put_channel_list(w, channels);
            w.put_u64(at.as_ns());
        }
        TraceEvent::DeliveredTail { msg, dest, at } => {
            w.put_u8(6);
            w.put_u32(msg.0);
            w.put_u32(dest.0);
            w.put_u64(at.as_ns());
        }
        TraceEvent::LinkDown { channel, at } => {
            w.put_u8(7);
            w.put_u32(channel.0);
            w.put_u64(at.as_ns());
        }
        TraceEvent::TornDown { msg, channel, at } => {
            w.put_u8(8);
            w.put_u32(msg.0);
            w.put_u32(channel.0);
            w.put_u64(at.as_ns());
        }
    }
}

fn get_trace_event(r: &mut SnapReader) -> Result<TraceEvent, SnapshotError> {
    Ok(match r.get_u8()? {
        0 => TraceEvent::SourceReady {
            msg: MsgId(r.get_u32()?),
            src: NodeId(r.get_u32()?),
            at: Time::from_ns(r.get_u64()?),
        },
        1 => TraceEvent::Requested {
            msg: MsgId(r.get_u32()?),
            node: NodeId(r.get_u32()?),
            channels: get_channel_list(r)?,
            at: Time::from_ns(r.get_u64()?),
        },
        2 => TraceEvent::Acquired {
            msg: MsgId(r.get_u32()?),
            node: NodeId(r.get_u32()?),
            channels: get_channel_list(r)?,
            at: Time::from_ns(r.get_u64()?),
        },
        3 => TraceEvent::HeaderArrived {
            msg: MsgId(r.get_u32()?),
            channel: ChannelId(r.get_u32()?),
            at: Time::from_ns(r.get_u64()?),
        },
        4 => TraceEvent::Bubble {
            msg: MsgId(r.get_u32()?),
            node: NodeId(r.get_u32()?),
            channel: ChannelId(r.get_u32()?),
            at: Time::from_ns(r.get_u64()?),
        },
        5 => TraceEvent::Released {
            msg: MsgId(r.get_u32()?),
            node: NodeId(r.get_u32()?),
            channels: get_channel_list(r)?,
            at: Time::from_ns(r.get_u64()?),
        },
        6 => TraceEvent::DeliveredTail {
            msg: MsgId(r.get_u32()?),
            dest: NodeId(r.get_u32()?),
            at: Time::from_ns(r.get_u64()?),
        },
        7 => TraceEvent::LinkDown {
            channel: ChannelId(r.get_u32()?),
            at: Time::from_ns(r.get_u64()?),
        },
        8 => TraceEvent::TornDown {
            msg: MsgId(r.get_u32()?),
            channel: ChannelId(r.get_u32()?),
            at: Time::from_ns(r.get_u64()?),
        },
        _ => return Err(SnapshotError::Corrupt("unknown trace event tag")),
    })
}

fn put_gauge(w: &mut SnapWriter, g: &GaugeSample) {
    w.put_u64(g.at_ns);
    for &l in &g.queue.levels {
        w.put_u32(l);
    }
    w.put_usize(g.queue.overflow);
    w.put_usize(g.queue.len);
    w.put_u32(g.live_worms);
    w.put_u32(g.live_segments);
    w.put_u32(g.ocrq_total);
    w.put_u32(g.ocrq_max);
    w.put_u32(g.epoch);
    w.put_u64(g.delivered);
    w.put_u64(g.torn_down);
    w.put_u64(g.unreachable);
}

fn get_gauge(r: &mut SnapReader) -> Result<GaugeSample, SnapshotError> {
    let at_ns = r.get_u64()?;
    let mut levels = [0u32; desim::WHEEL_LEVELS];
    for l in levels.iter_mut() {
        *l = r.get_u32()?;
    }
    Ok(GaugeSample {
        at_ns,
        queue: desim::QueueOccupancy {
            levels,
            overflow: r.get_usize()?,
            len: r.get_usize()?,
        },
        live_worms: r.get_u32()?,
        live_segments: r.get_u32()?,
        ocrq_total: r.get_u32()?,
        ocrq_max: r.get_u32()?,
        epoch: r.get_u32()?,
        delivered: r.get_u64()?,
        torn_down: r.get_u64()?,
        unreachable: r.get_u64()?,
    })
}
