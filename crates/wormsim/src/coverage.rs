//! Engine-novelty signals: a compact record of *which rare mechanisms a
//! run exercised*, independent of how often.
//!
//! The golden corpus pins what the hand-authored scenarios already reach;
//! the fuzzer (`spam-fuzz`) needs a cheap, deterministic answer to "did
//! this mutant visit an engine state no earlier run did?". [`CoverageSet`]
//! is that answer: a bitset of one-shot mechanism flags (first
//! teardown-during-branch-replication, first timing-wheel overflow, each
//! error variant) plus a handful of watermark counters (max branch
//! fanout, max OCRQ depth, epoch count) whose *exceedance* is also
//! novelty.
//!
//! Every signal is computed from engine-visible state only — never from
//! event-queue internals — so the same run produces the same
//! `CoverageSet` under both [`desim::QueueKind`] implementations (the
//! corpus suite pins [`crate::Counters`] equality across queues, and the
//! coverage rides inside `Counters`).

use crate::outcome::SimError;
use crate::routing::RouteError;

/// One named coverage bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoverageBit {
    /// The bit mask (exactly one bit set).
    pub mask: u64,
    /// Stable snake_case name (CSV column / report key).
    pub name: &'static str,
}

macro_rules! coverage_bits {
    ($($(#[$doc:meta])* $const_name:ident = $bit:expr, $name:literal;)*) => {
        impl CoverageSet {
            $( $(#[$doc])* pub const $const_name: u64 = 1 << $bit; )*
        }
        /// Every defined coverage bit, in bit order, with its stable name.
        pub const COVERAGE_BITS: &[CoverageBit] = &[
            $( CoverageBit { mask: 1 << $bit, name: $name }, )*
        ];
    };
}

coverage_bits! {
    /// A worm with two or more output channels (a branch replication
    /// unit) was torn down mid-flight by a fault.
    TEARDOWN_DURING_BRANCH = 0, "teardown_during_branch";
    /// An event was scheduled beyond the bucket wheel's span
    /// (`desim::WHEEL_SPAN_NS` past the current instant) — the timing
    /// wheel's overflow list carries it. Detected at schedule time from
    /// engine state, so the bit is queue-independent.
    WHEEL_OVERFLOW = 1, "wheel_overflow";
    /// A message's own injection link was already dead at source-ready.
    SOURCE_INJECTION_DEAD = 2, "source_injection_dead";
    /// A message was rejected at its source as unreachable (destination
    /// or source outside the routable component).
    UNREACHABLE_AT_SOURCE = 3, "unreachable_at_source";
    /// A live-mode routing dead end: an in-flight worm's routing failed
    /// mid-walk and it was torn down rather than aborting the run.
    ROUTE_DEADEND_LIVE = 4, "route_deadend_live";
    /// A routing decision requested a channel that died after the worm's
    /// labeling was built.
    DECISION_HIT_DEAD_CHANNEL = 5, "decision_hit_dead_channel";
    /// At least one bubble flit was created (asynchronous replication).
    BUBBLES = 6, "bubbles";
    /// The run was declared deadlocked by the progress watchdog.
    DEADLOCK_WATCHDOG = 7, "deadlock_watchdog";
    /// The run was declared deadlocked by event-queue exhaustion.
    DEADLOCK_QUEUE_EXHAUSTED = 8, "deadlock_queue_exhausted";
    /// The run passed through three or more routing epochs (two or more
    /// distinct fault instants).
    MULTI_EPOCH = 9, "multi_epoch";
    /// A relabel after a fault reattached at least one node while keeping
    /// the old tree (incremental patch, not a rebuild). Scenario-level:
    /// merged by `spam-scenario` after the run.
    RELABEL_REATTACH = 10, "relabel_reattach";
    /// A relabel rebuilt the spanning tree from scratch (the root died).
    /// Scenario-level: merged by `spam-scenario` after the run.
    RELABEL_FULL_REBUILD = 11, "relabel_full_rebuild";
    /// Two or more worms queued on one output channel's OCRQ at once.
    OCRQ_CONTENTION = 12, "ocrq_contention";
    /// A worm acquired two or more output channels at one router (branch
    /// replication engaged).
    BRANCHING_WORM = 13, "branching_worm";
    /// [`SimError::Route`] was recorded (aborting or per-message).
    ERR_ROUTE = 14, "err_route";
    /// [`SimError::Misroute`] was recorded.
    ERR_MISROUTE = 15, "err_misroute";
    /// [`SimError::EmptyDecision`] was recorded.
    ERR_EMPTY_DECISION = 16, "err_empty_decision";
    /// [`SimError::ForeignChannel`] was recorded.
    ERR_FOREIGN_CHANNEL = 17, "err_foreign_channel";
    /// [`SimError::DuplicateRequest`] was recorded.
    ERR_DUPLICATE_REQUEST = 18, "err_duplicate_request";
    /// [`SimError::TornDown`] was recorded.
    ERR_TORN_DOWN = 19, "err_torn_down";
    /// [`RouteError::NoLegalMove`] was seen.
    ROUTE_NO_LEGAL_MOVE = 20, "route_no_legal_move";
    /// [`RouteError::NoDestinationSubtree`] was seen.
    ROUTE_NO_DEST_SUBTREE = 21, "route_no_dest_subtree";
    /// [`RouteError::NoPlan`] was seen.
    ROUTE_NO_PLAN = 22, "route_no_plan";
    /// [`RouteError::NoSuchLink`] was seen.
    ROUTE_NO_SUCH_LINK = 23, "route_no_such_link";
    /// [`RouteError::UnreachableDestination`] was seen.
    ROUTE_UNREACHABLE_DEST = 24, "route_unreachable_dest";
    /// [`RouteError::SourceDisconnected`] was seen.
    ROUTE_SOURCE_DISCONNECTED = 25, "route_source_disconnected";
    /// [`SimError::HookSpec`] was recorded — a completion hook submitted
    /// an invalid follow-up message.
    ERR_HOOK_SPEC = 26, "err_hook_spec";
}

/// One named watermark extracted from a [`CoverageSet`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Watermark {
    /// Stable snake_case name.
    pub name: &'static str,
    /// The value.
    pub value: u64,
}

/// Compact novelty record of one run: mechanism bits + watermarks. Rides
/// inside [`crate::Counters`], so it is pinned byte-identical across
/// event-queue implementations by the golden corpus suite.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoverageSet {
    /// One-shot mechanism flags; see the `COVERAGE_BITS` table.
    pub bits: u64,
    /// Largest output fanout any worm acquired at one router.
    pub max_branch_fanout: u32,
    /// Deepest OCRQ (waiters on one output channel) observed.
    pub max_ocrq_depth: u32,
    /// Routing epochs the run passed through (fault boundaries + 1).
    pub epochs: u32,
    /// Events scheduled beyond the bucket wheel's span (overflow-list
    /// candidates), counted at schedule time.
    pub wheel_deferrals: u32,
    /// Most nodes any single relabel reattached (scenario-level; merged
    /// by `spam-scenario` after the run).
    pub max_reattached_nodes: u32,
}

impl CoverageSet {
    /// Sets one or more bits.
    #[inline]
    pub fn set(&mut self, mask: u64) {
        self.bits |= mask;
    }

    /// True when every bit of `mask` is set.
    #[inline]
    pub fn has(&self, mask: u64) -> bool {
        self.bits & mask == mask
    }

    /// Number of distinct bits set.
    pub fn bits_lit(&self) -> u32 {
        self.bits.count_ones()
    }

    /// Records an output-fanout observation (watermark + branch bit).
    #[inline]
    pub fn note_fanout(&mut self, fanout: u32) {
        if fanout >= 2 {
            self.set(Self::BRANCHING_WORM);
        }
        self.max_branch_fanout = self.max_branch_fanout.max(fanout);
    }

    /// Records an OCRQ-depth observation (watermark + contention bit).
    #[inline]
    pub fn note_ocrq_depth(&mut self, depth: u32) {
        if depth >= 2 {
            self.set(Self::OCRQ_CONTENTION);
        }
        self.max_ocrq_depth = self.max_ocrq_depth.max(depth);
    }

    /// Records a typed simulation error (aborting or per-message),
    /// including the routing-error variant when there is one.
    pub fn note_sim_error(&mut self, e: &SimError) {
        match e {
            SimError::Route { error, .. } => {
                self.set(Self::ERR_ROUTE);
                self.note_route_error(error);
            }
            SimError::Misroute { .. } => self.set(Self::ERR_MISROUTE),
            SimError::EmptyDecision { .. } => self.set(Self::ERR_EMPTY_DECISION),
            SimError::ForeignChannel { .. } => self.set(Self::ERR_FOREIGN_CHANNEL),
            SimError::DuplicateRequest { .. } => self.set(Self::ERR_DUPLICATE_REQUEST),
            SimError::TornDown { .. } => self.set(Self::ERR_TORN_DOWN),
            SimError::HookSpec { .. } => self.set(Self::ERR_HOOK_SPEC),
        }
    }

    /// Records which routing-error variant was seen.
    pub fn note_route_error(&mut self, e: &RouteError) {
        self.set(match e {
            RouteError::NoLegalMove { .. } => Self::ROUTE_NO_LEGAL_MOVE,
            RouteError::NoDestinationSubtree { .. } => Self::ROUTE_NO_DEST_SUBTREE,
            RouteError::NoPlan { .. } => Self::ROUTE_NO_PLAN,
            RouteError::NoSuchLink { .. } => Self::ROUTE_NO_SUCH_LINK,
            RouteError::UnreachableDestination { .. } => Self::ROUTE_UNREACHABLE_DEST,
            RouteError::SourceDisconnected { .. } => Self::ROUTE_SOURCE_DISCONNECTED,
        });
    }

    /// The watermarks by stable name, in a fixed order.
    pub fn watermarks(&self) -> [Watermark; 5] {
        [
            Watermark {
                name: "max_branch_fanout",
                value: self.max_branch_fanout as u64,
            },
            Watermark {
                name: "max_ocrq_depth",
                value: self.max_ocrq_depth as u64,
            },
            Watermark {
                name: "epochs",
                value: self.epochs as u64,
            },
            Watermark {
                name: "wheel_deferrals",
                value: self.wheel_deferrals as u64,
            },
            Watermark {
                name: "max_reattached_nodes",
                value: self.max_reattached_nodes as u64,
            },
        ]
    }

    /// Folds another run's coverage into this accumulator: union of bits,
    /// max of watermarks.
    pub fn absorb(&mut self, other: &CoverageSet) {
        self.bits |= other.bits;
        self.max_branch_fanout = self.max_branch_fanout.max(other.max_branch_fanout);
        self.max_ocrq_depth = self.max_ocrq_depth.max(other.max_ocrq_depth);
        self.epochs = self.epochs.max(other.epochs);
        self.wheel_deferrals = self.wheel_deferrals.max(other.wheel_deferrals);
        self.max_reattached_nodes = self.max_reattached_nodes.max(other.max_reattached_nodes);
    }

    /// The signals this run shows that `seen` does not: newly lit bits
    /// plus watermarks it strictly exceeds. Empty = not novel. Names are
    /// stable (`COVERAGE_BITS` names; watermark names suffixed with the
    /// new value, e.g. `epochs>4`).
    pub fn novel_signals(&self, seen: &CoverageSet) -> Vec<String> {
        let mut out = Vec::new();
        let fresh = self.bits & !seen.bits;
        for b in COVERAGE_BITS {
            if fresh & b.mask != 0 {
                out.push(b.name.to_string());
            }
        }
        for (mine, theirs) in self.watermarks().iter().zip(seen.watermarks()) {
            if mine.value > theirs.value {
                out.push(format!("{}>{}", mine.name, mine.value));
            }
        }
        out
    }

    /// True when [`Self::novel_signals`] would be non-empty, without
    /// allocating.
    pub fn is_novel_against(&self, seen: &CoverageSet) -> bool {
        if self.bits & !seen.bits != 0 {
            return true;
        }
        self.watermarks()
            .iter()
            .zip(seen.watermarks())
            .any(|(m, t)| m.value > t.value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flit::MsgId;
    use netgraph::{ChannelId, NodeId};

    #[test]
    fn bit_table_matches_constants() {
        assert_eq!(COVERAGE_BITS.len(), 27);
        // Names are unique and each mask has exactly one bit.
        let mut union = 0u64;
        for b in COVERAGE_BITS {
            assert_eq!(b.mask.count_ones(), 1, "{}", b.name);
            assert_eq!(union & b.mask, 0, "{} overlaps", b.name);
            union |= b.mask;
        }
        assert_eq!(union.count_ones() as usize, COVERAGE_BITS.len());
        assert_eq!(CoverageSet::TEARDOWN_DURING_BRANCH, COVERAGE_BITS[0].mask);
        assert_eq!(
            CoverageSet::ERR_HOOK_SPEC,
            COVERAGE_BITS[COVERAGE_BITS.len() - 1].mask
        );
    }

    #[test]
    fn watermarks_and_bits_feed_novelty() {
        let mut seen = CoverageSet::default();
        let mut run = CoverageSet::default();
        run.note_fanout(3);
        run.note_ocrq_depth(1);
        assert!(run.has(CoverageSet::BRANCHING_WORM));
        assert!(!run.has(CoverageSet::OCRQ_CONTENTION));
        assert!(run.is_novel_against(&seen));
        let signals = run.novel_signals(&seen);
        assert!(signals.contains(&"branching_worm".to_string()));
        assert!(signals.contains(&"max_branch_fanout>3".to_string()));
        seen.absorb(&run);
        assert!(!run.is_novel_against(&seen));
        assert!(run.novel_signals(&seen).is_empty());
        // Exceeding an absorbed watermark is novel again.
        let mut deeper = run;
        deeper.note_fanout(4);
        assert!(deeper.is_novel_against(&seen));
        assert_eq!(deeper.novel_signals(&seen), vec!["max_branch_fanout>4"]);
    }

    #[test]
    fn error_variants_map_to_distinct_bits() {
        let mut c = CoverageSet::default();
        c.note_sim_error(&SimError::Route {
            msg: MsgId(0),
            node: NodeId(1),
            error: RouteError::NoLegalMove {
                node: NodeId(1),
                target: NodeId(2),
            },
        });
        assert!(c.has(CoverageSet::ERR_ROUTE | CoverageSet::ROUTE_NO_LEGAL_MOVE));
        c.note_sim_error(&SimError::TornDown {
            msg: MsgId(0),
            channel: ChannelId(3),
        });
        assert!(c.has(CoverageSet::ERR_TORN_DOWN));
        assert_eq!(c.bits_lit(), 3);
    }
}
