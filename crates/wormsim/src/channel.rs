//! Per-channel simulator state: buffers, wire, ownership, and the OCRQ.

use crate::flit::{Flit, MsgId};
use spam_collections::{InlineVec, SlotId};
use std::collections::VecDeque;

/// Runtime state of one unidirectional channel.
///
/// A flit path through a channel: producer (the owning message's segment at
/// the source node) pushes into `out_buf`; the wire moves the `out_buf` head
/// into `in_buf` after the propagation delay, during which the flit keeps
/// occupying its `out_buf` slot (so channel bandwidth is one flit per
/// propagation delay); the consumer at the destination node pops `in_buf`.
///
/// Queue entries and the owner carry the requesting segment's slab handle
/// alongside the message id: every "who asked for this channel?" question
/// on the event path is answered by an array index instead of the reverse
/// hash map the engine used to keep.
#[derive(Debug, Clone)]
pub struct Chan {
    /// Sender-side buffer.
    pub out_buf: VecDeque<Flit>,
    /// Receiver-side buffer.
    pub in_buf: VecDeque<Flit>,
    /// A flit is currently crossing the wire (its slot still in `out_buf`).
    pub wire_busy: bool,
    /// Receiver slots promised to in-flight wire transfers.
    pub reserved_in: u8,
    /// Message currently holding this channel and the segment that
    /// acquired it (set at acquisition, cleared when the tail is
    /// replicated into `out_buf`).
    pub owner: Option<(MsgId, SlotId)>,
    /// Output channel request queue (§3.2): FIFO of `(message, requesting
    /// segment)` waiting to acquire this channel. The head may acquire once
    /// the channel is free.
    pub ocrq: VecDeque<(MsgId, SlotId)>,
    /// The live transit segment whose flits arrive on this channel (a worm
    /// traversal keyed by input channel), if any.
    pub seg: Option<SlotId>,
    /// Header states waiting at (or traveling toward) this channel's
    /// receiving end: `(message, handle into the engine's header slab)`.
    /// Replaces the engine-wide `(msg, channel) -> header` hash map.
    pub hdrs: InlineVec<(MsgId, SlotId), 2>,
    /// A routing decision for the header at the head of `in_buf` has been
    /// scheduled but not executed yet (prevents double-scheduling).
    pub route_pending: bool,
    /// Total flits (real + bubble) that have crossed this channel's wire —
    /// per-channel utilization for hot-spot analyses.
    pub crossings: u64,
}

impl Chan {
    /// Fresh idle channel.
    pub fn new() -> Self {
        Chan {
            out_buf: VecDeque::with_capacity(2),
            in_buf: VecDeque::with_capacity(2),
            wire_busy: false,
            reserved_in: 0,
            owner: None,
            ocrq: VecDeque::new(),
            seg: None,
            hdrs: InlineVec::new(),
            route_pending: false,
            crossings: 0,
        }
    }

    /// Free for acquisition: unowned and fully drained on the sender side.
    /// (An unowned channel may still hold the previous worm's tail in its
    /// output buffer until the wire carries it away.)
    pub fn free_for_acquisition(&self) -> bool {
        self.owner.is_none() && self.out_buf.is_empty()
    }

    /// Sender-side space check against the configured capacity.
    pub fn out_has_space(&self, cap: usize) -> bool {
        self.out_buf.len() < cap
    }

    /// Receiver-side space check, counting slots reserved by in-flight
    /// transfers.
    pub fn in_has_space(&self, cap: usize) -> bool {
        self.in_buf.len() + (self.reserved_in as usize) < cap
    }

    /// True when the channel is completely quiescent (used by end-of-run
    /// invariant checks).
    pub fn is_quiescent(&self) -> bool {
        self.out_buf.is_empty()
            && self.in_buf.is_empty()
            && !self.wire_busy
            && self.reserved_in == 0
            && self.owner.is_none()
            && self.ocrq.is_empty()
            && self.seg.is_none()
            && self.hdrs.is_empty()
            && !self.route_pending
    }
}

impl Default for Chan {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flit::FlitKind;

    #[test]
    fn fresh_channel_is_quiescent_and_free() {
        let c = Chan::new();
        assert!(c.is_quiescent());
        assert!(c.free_for_acquisition());
        assert!(c.out_has_space(1));
        assert!(c.in_has_space(1));
    }

    #[test]
    fn ownership_blocks_acquisition() {
        let mut c = Chan::new();
        c.owner = Some((MsgId(1), SlotId::default()));
        assert!(!c.free_for_acquisition());
        assert!(!c.is_quiescent());
    }

    #[test]
    fn undrained_out_buf_blocks_acquisition() {
        let mut c = Chan::new();
        c.out_buf.push_back(Flit {
            msg: MsgId(0),
            kind: FlitKind::Tail(7),
        });
        assert!(!c.free_for_acquisition(), "tail still draining");
        assert!(!c.out_has_space(1));
        assert!(c.out_has_space(2));
    }

    #[test]
    fn reservations_count_toward_input_space() {
        let mut c = Chan::new();
        assert!(c.in_has_space(1));
        c.reserved_in = 1;
        assert!(!c.in_has_space(1));
        assert!(c.in_has_space(2));
        c.in_buf.push_back(Flit::bubble(MsgId(0)));
        assert!(!c.in_has_space(2));
    }

    #[test]
    fn pending_headers_block_quiescence() {
        let mut c = Chan::new();
        c.hdrs.push((MsgId(3), SlotId::default()));
        assert!(!c.is_quiescent());
        c.hdrs.clear();
        c.seg = Some(SlotId::default());
        assert!(!c.is_quiescent());
    }
}
