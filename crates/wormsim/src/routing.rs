//! The routing-algorithm interface and testing utilities.
//!
//! The simulator is generic over a [`RoutingAlgorithm`]: at every router a
//! header visits, the algorithm is consulted once (after the router-setup
//! latency) and returns the **set** of output channels the message must
//! atomically request there — one channel for a unicast hop, several where a
//! multi-head worm branches. Each requested channel carries a successor
//! header state, which the engine delivers to the algorithm again when that
//! branch's header reaches the next router.
//!
//! Header state is how phase information ("has this worm already used a
//! down-cross channel?") and the destination set travel with the worm — in
//! hardware they are header-flit fields; here they are a typed value.

use crate::flit::MsgId;
use crate::message::MessageSpec;
use desim::Time;
use netgraph::{ChannelId, NodeId, Topology};
use std::collections::HashMap;

/// The channels a header requests at one router, with the header state each
/// branch carries onward.
#[derive(Debug, Clone)]
pub struct RouteDecision<H> {
    /// `(channel, successor state)` pairs; all channels must originate at
    /// the deciding router and be pairwise distinct. Must be non-empty.
    pub requests: Vec<(ChannelId, H)>,
}

impl<H> RouteDecision<H> {
    /// Single-channel decision (unicast hop).
    pub fn single(ch: ChannelId, state: H) -> Self {
        RouteDecision {
            requests: vec![(ch, state)],
        }
    }
}

/// A wormhole routing algorithm driven by the simulator.
pub trait RoutingAlgorithm {
    /// Per-branch header state.
    type Header: Clone;

    /// Header state when the worm leaves its source processor.
    fn initial_header(&self, spec: &MessageSpec) -> Self::Header;

    /// Routing decision for a header arriving at switch `node` on channel
    /// `in_ch` with state `header`.
    ///
    /// # Contract
    ///
    /// Must return at least one request; every requested channel must have
    /// `src == node`; channels must be distinct. The engine panics on
    /// violations — they are algorithm bugs, not runtime conditions.
    fn route(
        &self,
        topo: &Topology,
        node: NodeId,
        in_ch: ChannelId,
        header: &Self::Header,
        spec: &MessageSpec,
    ) -> RouteDecision<Self::Header>;
}

/// Observer invoked when a message has been fully delivered; may inject
/// follow-up messages (multi-phase schemes such as unicast-based multicast,
/// barrier/gather protocols, request-reply workloads).
pub trait CompletionHook {
    /// Called once per message, at the instant its tail reaches its last
    /// destination. Returned specs are submitted with their `gen_time`
    /// (must be ≥ `completed_at`).
    fn on_complete(
        &mut self,
        msg: MsgId,
        spec: &MessageSpec,
        completed_at: Time,
    ) -> Vec<MessageSpec>;
}

/// A [`CompletionHook`] that does nothing.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoHook;

impl CompletionHook for NoHook {
    fn on_complete(&mut self, _: MsgId, _: &MessageSpec, _: Time) -> Vec<MessageSpec> {
        Vec::new()
    }
}

/// A scripted routing algorithm for tests: every message `tag` is assigned
/// an explicit routing tree (node → outgoing channels). This is how the
/// engine is exercised independently of SPAM, and how *deliberately
/// deadlocking* channel-dependency cycles are constructed as positive
/// controls for the deadlock detector.
#[derive(Debug, Clone)]
pub struct OracleRouting {
    topo: Topology,
    /// `(tag, node) -> outgoing channels to request there`.
    plan: HashMap<(u64, NodeId), Vec<ChannelId>>,
}

impl OracleRouting {
    /// New oracle for a topology (kept by value for path resolution).
    pub fn new(topo: &Topology) -> Self {
        OracleRouting {
            topo: topo.clone(),
            plan: HashMap::new(),
        }
    }

    /// Scripts a unicast path `nodes[0] (processor) → ... → nodes.last()
    /// (processor)` for messages tagged `tag`.
    ///
    /// # Panics
    ///
    /// Panics if consecutive nodes are not linked.
    pub fn add_unicast_path(&mut self, tag: u64, nodes: &[NodeId]) {
        assert!(nodes.len() >= 2, "path needs at least source and dest");
        // The engine itself requests the processor's injection channel, so
        // the plan covers the intermediate switches only.
        let hops: Vec<(NodeId, NodeId)> = nodes
            .windows(2)
            .skip(1) // first hop is the injection channel
            .map(|w| (w[0], w[1]))
            .collect();
        self.add_tree_edges(tag, hops);
    }

    /// Scripts an arbitrary routing tree from `(from, to)` link pairs: at
    /// each `from` node, the message requests the channel towards `to`.
    /// Pairs sharing a `from` become a branching (multi-head) request set.
    ///
    /// # Panics
    ///
    /// Panics if a pair is not linked in the topology.
    pub fn add_tree_edges(&mut self, tag: u64, edges: impl IntoIterator<Item = (NodeId, NodeId)>) {
        for (from, to) in edges {
            let ch = self
                .topo
                .channel_between(from, to)
                .unwrap_or_else(|| panic!("no link {from} -> {to}"));
            self.plan.entry((tag, from)).or_default().push(ch);
        }
    }
}

impl RoutingAlgorithm for OracleRouting {
    type Header = ();

    fn initial_header(&self, _spec: &MessageSpec) -> Self::Header {}

    fn route(
        &self,
        _topo: &Topology,
        node: NodeId,
        _in_ch: ChannelId,
        _header: &(),
        spec: &MessageSpec,
    ) -> RouteDecision<()> {
        let chans = self
            .plan
            .get(&(spec.tag, node))
            .unwrap_or_else(|| panic!("oracle has no plan for tag {} at {node}", spec.tag));
        RouteDecision {
            requests: chans.iter().map(|c| (*c, ())).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line3() -> (Topology, Vec<NodeId>) {
        // p3 - s0 - s1 - s2 - p4, plus p5 on s1
        let mut b = Topology::builder();
        let s0 = b.add_switch();
        let s1 = b.add_switch();
        let s2 = b.add_switch();
        let p3 = b.add_processor();
        let p4 = b.add_processor();
        let p5 = b.add_processor();
        b.link(s0, s1).unwrap();
        b.link(s1, s2).unwrap();
        b.link(p3, s0).unwrap();
        b.link(p4, s2).unwrap();
        b.link(p5, s1).unwrap();
        (b.build(), vec![s0, s1, s2, p3, p4, p5])
    }

    #[test]
    fn oracle_unicast_plan_resolves_channels() {
        let (t, n) = line3();
        let mut o = OracleRouting::new(&t);
        o.add_unicast_path(7, &[n[3], n[0], n[1], n[2], n[4]]);
        let spec = MessageSpec::unicast(n[3], n[4], 4).tag(7);
        // At s0 the plan sends towards s1.
        let d = o.route(&t, n[0], ChannelId(0), &(), &spec);
        assert_eq!(d.requests.len(), 1);
        assert_eq!(t.channel(d.requests[0].0).dst, n[1]);
        // At s2 the plan delivers to p4.
        let d2 = o.route(&t, n[2], ChannelId(0), &(), &spec);
        assert_eq!(t.channel(d2.requests[0].0).dst, n[4]);
    }

    #[test]
    fn oracle_branching_plan() {
        let (t, n) = line3();
        let mut o = OracleRouting::new(&t);
        // At s1 split to both p5 and s2.
        o.add_tree_edges(1, [(n[1], n[5]), (n[1], n[2])]);
        let spec = MessageSpec::multicast(n[3], vec![n[5], n[4]], 4).tag(1);
        let d = o.route(&t, n[1], ChannelId(0), &(), &spec);
        assert_eq!(d.requests.len(), 2);
    }

    #[test]
    #[should_panic(expected = "no plan for tag")]
    fn oracle_missing_plan_panics() {
        let (t, n) = line3();
        let o = OracleRouting::new(&t);
        let spec = MessageSpec::unicast(n[3], n[4], 4).tag(99);
        o.route(&t, n[0], ChannelId(0), &(), &spec);
    }

    #[test]
    #[should_panic(expected = "no link")]
    fn oracle_rejects_unlinked_edges() {
        let (t, n) = line3();
        let mut o = OracleRouting::new(&t);
        o.add_tree_edges(0, [(n[0], n[2])]); // s0 and s2 not adjacent
    }

    #[test]
    fn route_decision_single() {
        let d: RouteDecision<u8> = RouteDecision::single(ChannelId(5), 42);
        assert_eq!(d.requests, vec![(ChannelId(5), 42)]);
    }
}
