//! The routing-algorithm interface and testing utilities.
//!
//! The simulator is generic over a [`RoutingAlgorithm`]: at every router a
//! header visits, the algorithm is consulted once (after the router-setup
//! latency) and returns the **set** of output channels the message must
//! atomically request there — one channel for a unicast hop, several where a
//! multi-head worm branches. Each requested channel carries a successor
//! header state, which the engine delivers to the algorithm again when that
//! branch's header reaches the next router.
//!
//! Header state is how phase information ("has this worm already used a
//! down-cross channel?") and the destination set travel with the worm — in
//! hardware they are header-flit fields; here they are a typed value.

use crate::flit::MsgId;
use crate::message::MessageSpec;
use desim::Time;
use netgraph::{ChannelId, NodeId, Topology};
use spam_snapshot::{SnapReader, SnapWriter, SnapshotError};
use std::collections::HashMap;
use std::fmt;

/// A typed routing failure.
///
/// On a healthy network with a correct algorithm these never occur — the
/// paper's Theorem 1 preconditions guarantee a legal move always exists.
/// On a *degraded* network (dead links/switches) a stale labeling or an
/// unreachable destination surfaces here as a diagnosable error instead of
/// a crash, and the engine converts it into
/// [`crate::SimError::Route`] on the outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouteError {
    /// No legal output channel exists at `node` towards `target` — on a
    /// degraded network this means the labeling no longer matches the
    /// surviving channels (relabel the component).
    NoLegalMove {
        /// The switch where the worm is stuck.
        node: NodeId,
        /// The node it was trying to reach.
        target: NodeId,
    },
    /// The tree stage found no child subtree containing a destination —
    /// the destination set includes nodes outside the labeled component.
    NoDestinationSubtree {
        /// The switch where the split failed.
        node: NodeId,
    },
    /// A scripted (oracle) router had no plan entry for this message here.
    NoPlan {
        /// The message's correlation tag.
        tag: u64,
        /// The unplanned-for switch.
        node: NodeId,
    },
    /// A scripted route referenced a link that does not exist.
    NoSuchLink {
        /// Requested source endpoint.
        from: NodeId,
        /// Requested destination endpoint.
        to: NodeId,
    },
    /// A destination lies outside the routing algorithm's labeled
    /// component — on a degraded network, a node lost to the dead zone.
    /// Detected when the header is formed, before any flit moves.
    UnreachableDestination {
        /// The unreachable destination processor.
        dest: NodeId,
    },
    /// The *source* lies outside the routing algorithm's labeled
    /// component — its island was severed from the routable fabric, so it
    /// can reach nothing. Detected when the header is formed.
    SourceDisconnected {
        /// The stranded source processor.
        src: NodeId,
    },
}

impl fmt::Display for RouteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RouteError::NoLegalMove { node, target } => {
                write!(f, "no legal move from {node} towards {target}")
            }
            RouteError::NoDestinationSubtree { node } => {
                write!(f, "no destination subtree below {node}")
            }
            RouteError::NoPlan { tag, node } => {
                write!(f, "no routing plan for tag {tag} at {node}")
            }
            RouteError::NoSuchLink { from, to } => write!(f, "no link {from} -> {to}"),
            RouteError::UnreachableDestination { dest } => {
                write!(f, "destination {dest} is outside the routable component")
            }
            RouteError::SourceDisconnected { src } => {
                write!(f, "source {src} is outside the routable component")
            }
        }
    }
}

impl std::error::Error for RouteError {}

/// The channels a header requests at one router, with the header state each
/// branch carries onward.
///
/// The engine owns one `RouteDecision` per simulation and passes it to
/// [`RoutingAlgorithm::route`] as an out-parameter, cleared between calls:
/// the backing `Vec` reaches its steady capacity within the first few hops
/// and the per-hop decision then allocates nothing.
#[derive(Debug, Clone)]
pub struct RouteDecision<H> {
    /// `(channel, successor state)` pairs; all channels must originate at
    /// the deciding router and be pairwise distinct. Must be non-empty on
    /// success.
    pub requests: Vec<(ChannelId, H)>,
}

impl<H> Default for RouteDecision<H> {
    fn default() -> Self {
        RouteDecision {
            requests: Vec::new(),
        }
    }
}

impl<H> RouteDecision<H> {
    /// Single-channel decision (unicast hop).
    pub fn single(ch: ChannelId, state: H) -> Self {
        RouteDecision {
            requests: vec![(ch, state)],
        }
    }

    /// Empties the request set, retaining capacity.
    #[inline]
    pub fn clear(&mut self) {
        self.requests.clear();
    }

    /// Appends one `(channel, successor state)` request.
    #[inline]
    pub fn push(&mut self, ch: ChannelId, state: H) {
        self.requests.push((ch, state));
    }
}

/// A wormhole routing algorithm driven by the simulator.
pub trait RoutingAlgorithm {
    /// Per-branch header state.
    type Header: Clone;

    /// Reusable per-simulation working memory for [`Self::route`] (legal
    /// candidate sets, inner decisions of wrapped algorithms, ...). The
    /// engine owns one value and threads it through every call, so an
    /// algorithm that keeps its temporaries here is allocation-free per
    /// hop. Algorithms without temporaries use `()`.
    type Scratch: Default;

    /// Header state when the worm leaves its source processor. Errors —
    /// e.g. [`RouteError::UnreachableDestination`] for a destination the
    /// algorithm's labeling cannot reach on a degraded network — abort
    /// the run with a typed [`crate::SimError::Route`] before any flit
    /// moves.
    fn initial_header(&self, spec: &MessageSpec) -> Result<Self::Header, RouteError>;

    /// Routing decision for a header arriving at switch `node` on channel
    /// `in_ch` with state `header`, written into `out` (cleared by the
    /// engine before the call; `scratch` is the algorithm's own reusable
    /// working memory). Algorithms bind their topology at construction —
    /// the engine simulates the same network the algorithm routes.
    ///
    /// # Contract
    ///
    /// On success, must push at least one request; every requested
    /// channel must have `src == node`; channels must be distinct. The
    /// engine converts violations — and any returned [`RouteError`] —
    /// into a typed [`crate::SimError`] on the outcome and aborts the
    /// run, so a bad route (e.g. on a degraded network whose labeling
    /// went stale) is diagnosable rather than a crash.
    fn route(
        &self,
        node: NodeId,
        in_ch: ChannelId,
        header: &Self::Header,
        spec: &MessageSpec,
        scratch: &mut Self::Scratch,
        out: &mut RouteDecision<Self::Header>,
    ) -> Result<(), RouteError>;

    /// Stable identifier written into engine checkpoints and compared on
    /// restore, so a snapshot taken under one algorithm cannot silently
    /// resume under another ([`SnapshotError::ConfigMismatch`]).
    /// Algorithms supporting the header codec below must override this
    /// with a unique non-empty name.
    fn snapshot_name(&self) -> &'static str {
        ""
    }

    /// Serializes one in-flight header state into an engine checkpoint.
    /// The default declines: an algorithm that does not opt into the
    /// snapshot codec makes checkpointing fail with a typed
    /// [`SnapshotError::UnsupportedRouting`] instead of producing a
    /// snapshot that cannot be restored.
    fn encode_header(
        &self,
        _header: &Self::Header,
        _w: &mut SnapWriter,
    ) -> Result<(), SnapshotError> {
        Err(SnapshotError::UnsupportedRouting(
            "routing algorithm has no header snapshot codec",
        ))
    }

    /// Reconstructs one header state written by [`Self::encode_header`].
    fn decode_header(&self, _r: &mut SnapReader) -> Result<Self::Header, SnapshotError> {
        Err(SnapshotError::UnsupportedRouting(
            "routing algorithm has no header snapshot codec",
        ))
    }
}

/// Observer invoked when a message has been fully delivered; may inject
/// follow-up messages (multi-phase schemes such as unicast-based multicast,
/// barrier/gather protocols, request-reply workloads).
pub trait CompletionHook {
    /// Called once per message, at the instant its tail reaches its last
    /// destination. Returned specs are submitted with their `gen_time`
    /// (must be ≥ `completed_at`).
    fn on_complete(
        &mut self,
        msg: MsgId,
        spec: &MessageSpec,
        completed_at: Time,
    ) -> Vec<MessageSpec>;

    /// Serializes the hook's mutable state into an engine checkpoint.
    /// Stateless hooks (the default) write nothing. Object-safe by
    /// design: the engine only holds `&mut dyn CompletionHook`.
    fn encode_state(&self, _w: &mut SnapWriter) {}

    /// Restores state written by [`Self::encode_state`] into this hook.
    /// The engine verifies the hook consumes exactly the bytes its
    /// encoder produced, so a hook/snapshot mismatch surfaces as a typed
    /// [`SnapshotError`] rather than state corruption.
    fn decode_state(&mut self, _r: &mut SnapReader) -> Result<(), SnapshotError> {
        Ok(())
    }
}

/// A [`CompletionHook`] that does nothing.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoHook;

impl CompletionHook for NoHook {
    fn on_complete(&mut self, _: MsgId, _: &MessageSpec, _: Time) -> Vec<MessageSpec> {
        Vec::new()
    }
}

/// A scripted routing algorithm for tests: every message `tag` is assigned
/// an explicit routing tree (node → outgoing channels). This is how the
/// engine is exercised independently of SPAM, and how *deliberately
/// deadlocking* channel-dependency cycles are constructed as positive
/// controls for the deadlock detector.
#[derive(Debug, Clone)]
pub struct OracleRouting {
    topo: Topology,
    /// `(tag, node) -> outgoing channels to request there`.
    plan: HashMap<(u64, NodeId), Vec<ChannelId>>,
}

impl OracleRouting {
    /// New oracle for a topology (kept by value for path resolution).
    pub fn new(topo: &Topology) -> Self {
        OracleRouting {
            topo: topo.clone(),
            plan: HashMap::new(),
        }
    }

    /// Scripts a unicast path `nodes[0] (processor) → ... → nodes.last()
    /// (processor)` for messages tagged `tag`. Errors with
    /// [`RouteError::NoSuchLink`] if consecutive nodes are not linked.
    ///
    /// # Panics
    ///
    /// Panics if the path has fewer than two nodes.
    pub fn add_unicast_path(&mut self, tag: u64, nodes: &[NodeId]) -> Result<(), RouteError> {
        assert!(nodes.len() >= 2, "path needs at least source and dest");
        // The engine itself requests the processor's injection channel, so
        // the plan covers the intermediate switches only.
        let hops: Vec<(NodeId, NodeId)> = nodes
            .windows(2)
            .skip(1) // first hop is the injection channel
            .map(|w| (w[0], w[1]))
            .collect();
        self.add_tree_edges(tag, hops)
    }

    /// Scripts an arbitrary routing tree from `(from, to)` link pairs: at
    /// each `from` node, the message requests the channel towards `to`.
    /// Pairs sharing a `from` become a branching (multi-head) request set.
    /// Errors with [`RouteError::NoSuchLink`] on a pair that is not linked
    /// in the topology (earlier pairs stay scripted).
    pub fn add_tree_edges(
        &mut self,
        tag: u64,
        edges: impl IntoIterator<Item = (NodeId, NodeId)>,
    ) -> Result<(), RouteError> {
        for (from, to) in edges {
            let ch = self
                .topo
                .channel_between(from, to)
                .ok_or(RouteError::NoSuchLink { from, to })?;
            self.plan.entry((tag, from)).or_default().push(ch);
        }
        Ok(())
    }
}

impl RoutingAlgorithm for OracleRouting {
    type Header = ();
    type Scratch = ();

    fn initial_header(&self, _spec: &MessageSpec) -> Result<Self::Header, RouteError> {
        Ok(())
    }

    fn snapshot_name(&self) -> &'static str {
        "oracle"
    }

    fn encode_header(&self, _header: &(), _w: &mut SnapWriter) -> Result<(), SnapshotError> {
        Ok(())
    }

    fn decode_header(&self, _r: &mut SnapReader) -> Result<(), SnapshotError> {
        Ok(())
    }

    fn route(
        &self,
        node: NodeId,
        _in_ch: ChannelId,
        _header: &(),
        spec: &MessageSpec,
        _scratch: &mut (),
        out: &mut RouteDecision<()>,
    ) -> Result<(), RouteError> {
        let chans = self.plan.get(&(spec.tag, node)).ok_or(RouteError::NoPlan {
            tag: spec.tag,
            node,
        })?;
        for &c in chans {
            out.push(c, ());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One-shot `route` convenience for tests (fresh scratch + decision).
    fn route_once<R: RoutingAlgorithm>(
        r: &R,
        node: NodeId,
        in_ch: ChannelId,
        header: &R::Header,
        spec: &MessageSpec,
    ) -> Result<RouteDecision<R::Header>, RouteError> {
        let mut scratch = R::Scratch::default();
        let mut out = RouteDecision::default();
        r.route(node, in_ch, header, spec, &mut scratch, &mut out)?;
        Ok(out)
    }

    fn line3() -> (Topology, Vec<NodeId>) {
        // p3 - s0 - s1 - s2 - p4, plus p5 on s1
        let mut b = Topology::builder();
        let s0 = b.add_switch();
        let s1 = b.add_switch();
        let s2 = b.add_switch();
        let p3 = b.add_processor();
        let p4 = b.add_processor();
        let p5 = b.add_processor();
        b.link(s0, s1).unwrap();
        b.link(s1, s2).unwrap();
        b.link(p3, s0).unwrap();
        b.link(p4, s2).unwrap();
        b.link(p5, s1).unwrap();
        (b.build(), vec![s0, s1, s2, p3, p4, p5])
    }

    #[test]
    fn oracle_unicast_plan_resolves_channels() {
        let (t, n) = line3();
        let mut o = OracleRouting::new(&t);
        o.add_unicast_path(7, &[n[3], n[0], n[1], n[2], n[4]])
            .unwrap();
        let spec = MessageSpec::unicast(n[3], n[4], 4).tag(7);
        // At s0 the plan sends towards s1.
        let d = route_once(&o, n[0], ChannelId(0), &(), &spec).unwrap();
        assert_eq!(d.requests.len(), 1);
        assert_eq!(t.channel(d.requests[0].0).dst, n[1]);
        // At s2 the plan delivers to p4.
        let d2 = route_once(&o, n[2], ChannelId(0), &(), &spec).unwrap();
        assert_eq!(t.channel(d2.requests[0].0).dst, n[4]);
    }

    #[test]
    fn oracle_branching_plan() {
        let (t, n) = line3();
        let mut o = OracleRouting::new(&t);
        // At s1 split to both p5 and s2.
        o.add_tree_edges(1, [(n[1], n[5]), (n[1], n[2])]).unwrap();
        let spec = MessageSpec::multicast(n[3], vec![n[5], n[4]], 4).tag(1);
        let d = route_once(&o, n[1], ChannelId(0), &(), &spec).unwrap();
        assert_eq!(d.requests.len(), 2);
    }

    #[test]
    fn oracle_missing_plan_is_a_typed_error() {
        let (t, n) = line3();
        let o = OracleRouting::new(&t);
        let spec = MessageSpec::unicast(n[3], n[4], 4).tag(99);
        assert_eq!(
            route_once(&o, n[0], ChannelId(0), &(), &spec).unwrap_err(),
            RouteError::NoPlan {
                tag: 99,
                node: n[0]
            }
        );
    }

    #[test]
    fn oracle_rejects_unlinked_edges() {
        let (t, n) = line3();
        let mut o = OracleRouting::new(&t);
        // s0 and s2 not adjacent.
        assert_eq!(
            o.add_tree_edges(0, [(n[0], n[2])]),
            Err(RouteError::NoSuchLink {
                from: n[0],
                to: n[2]
            })
        );
    }

    #[test]
    fn route_decision_single() {
        let d: RouteDecision<u8> = RouteDecision::single(ChannelId(5), 42);
        assert_eq!(d.requests, vec![(ChannelId(5), 42)]);
    }
}
