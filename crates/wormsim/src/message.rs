//! Message specifications submitted to the simulator.

use desim::Time;
use netgraph::{NodeId, NodeKind, Topology};
use std::fmt;

/// A message to inject: source processor, destination processors, length in
/// flits, and generation time. Latency is measured from `gen_time` (the
/// moment the send is initiated) to the arrival of the tail flit at the last
/// destination, exactly as in §4: "the total elapsed time from message
/// startup at the source until the last flit arrived at the last
/// destination node".
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MessageSpec {
    /// Sending processor.
    pub src: NodeId,
    /// Destination processors (distinct, non-empty, excluding `src`).
    pub dests: Vec<NodeId>,
    /// Total flits including header and tail (≥ 2; the paper uses 128).
    pub len: u32,
    /// When the send is initiated; startup latency is added on top.
    pub gen_time: Time,
    /// Caller-owned correlation tag (used by routing oracles and
    /// completion hooks); not interpreted by the engine.
    pub tag: u64,
}

/// Validation errors for a [`MessageSpec`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpecError {
    /// The source is not a processor of this topology.
    SourceNotProcessor(NodeId),
    /// The source processor has no channel — stranded by a fault; it can
    /// inject nothing.
    SourceDetached(NodeId),
    /// A destination is not a processor of this topology.
    DestNotProcessor(NodeId),
    /// Empty destination set.
    NoDestinations,
    /// The same destination appears twice.
    DuplicateDestination(NodeId),
    /// The source is among the destinations.
    SelfDestination(NodeId),
    /// Messages need a header and a tail.
    TooShort(u32),
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::SourceNotProcessor(n) => write!(f, "source {n} is not a processor"),
            SpecError::SourceDetached(n) => {
                write!(f, "source {n} has no channel (stranded by a fault)")
            }
            SpecError::DestNotProcessor(n) => write!(f, "destination {n} is not a processor"),
            SpecError::NoDestinations => write!(f, "message has no destinations"),
            SpecError::DuplicateDestination(n) => write!(f, "duplicate destination {n}"),
            SpecError::SelfDestination(n) => write!(f, "source {n} is also a destination"),
            SpecError::TooShort(l) => write!(f, "message length {l} < 2 flits"),
        }
    }
}

impl std::error::Error for SpecError {}

impl MessageSpec {
    /// A unicast of `len` flits, generated at time zero.
    pub fn unicast(src: NodeId, dest: NodeId, len: u32) -> Self {
        MessageSpec {
            src,
            dests: vec![dest],
            len,
            gen_time: Time::ZERO,
            tag: 0,
        }
    }

    /// A multicast of `len` flits to `dests`, generated at time zero.
    pub fn multicast(src: NodeId, dests: Vec<NodeId>, len: u32) -> Self {
        MessageSpec {
            src,
            dests,
            len,
            gen_time: Time::ZERO,
            tag: 0,
        }
    }

    /// Sets the generation time.
    pub fn at(mut self, t: Time) -> Self {
        self.gen_time = t;
        self
    }

    /// Sets the correlation tag.
    pub fn tag(mut self, tag: u64) -> Self {
        self.tag = tag;
        self
    }

    /// True when this is a one-destination message.
    pub fn is_unicast(&self) -> bool {
        self.dests.len() == 1
    }

    /// Checks the spec against a topology.
    pub fn validate(&self, topo: &Topology) -> Result<(), SpecError> {
        if self.len < 2 {
            return Err(SpecError::TooShort(self.len));
        }
        if self.dests.is_empty() {
            return Err(SpecError::NoDestinations);
        }
        let is_proc =
            |n: NodeId| n.index() < topo.num_nodes() && topo.kind(n) == NodeKind::Processor;
        if !is_proc(self.src) {
            return Err(SpecError::SourceNotProcessor(self.src));
        }
        if topo.out_channels(self.src).len() != 1 {
            return Err(SpecError::SourceDetached(self.src));
        }
        let mut seen = std::collections::HashSet::with_capacity(self.dests.len());
        for &d in &self.dests {
            if !is_proc(d) {
                return Err(SpecError::DestNotProcessor(d));
            }
            if d == self.src {
                return Err(SpecError::SelfDestination(d));
            }
            if !seen.insert(d) {
                return Err(SpecError::DuplicateDestination(d));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topo() -> (Topology, NodeId, NodeId, NodeId) {
        let mut b = Topology::builder();
        let s = b.add_switch();
        let p0 = b.add_processor();
        let p1 = b.add_processor();
        // Two processors on one switch is not a paper topology, but fine
        // for spec validation tests.
        b.link(p0, s).unwrap();
        b.link(p1, s).unwrap();
        (b.build(), s, p0, p1)
    }

    #[test]
    fn valid_specs_pass() {
        let (t, _, p0, p1) = topo();
        MessageSpec::unicast(p0, p1, 128).validate(&t).unwrap();
        MessageSpec::multicast(p1, vec![p0], 2)
            .validate(&t)
            .unwrap();
    }

    #[test]
    fn builder_methods_chain() {
        let (_, _, p0, p1) = topo();
        let m = MessageSpec::unicast(p0, p1, 8).at(Time::from_us(3)).tag(9);
        assert_eq!(m.gen_time, Time::from_us(3));
        assert_eq!(m.tag, 9);
        assert!(m.is_unicast());
    }

    #[test]
    fn rejects_bad_specs() {
        let (t, s, p0, p1) = topo();
        assert_eq!(
            MessageSpec::unicast(s, p1, 8).validate(&t),
            Err(SpecError::SourceNotProcessor(s))
        );
        assert_eq!(
            MessageSpec::unicast(p0, s, 8).validate(&t),
            Err(SpecError::DestNotProcessor(s))
        );
        assert_eq!(
            MessageSpec::multicast(p0, vec![], 8).validate(&t),
            Err(SpecError::NoDestinations)
        );
        assert_eq!(
            MessageSpec::multicast(p0, vec![p1, p1], 8).validate(&t),
            Err(SpecError::DuplicateDestination(p1))
        );
        assert_eq!(
            MessageSpec::multicast(p0, vec![p0], 8).validate(&t),
            Err(SpecError::SelfDestination(p0))
        );
        assert_eq!(
            MessageSpec::unicast(p0, p1, 1).validate(&t),
            Err(SpecError::TooShort(1))
        );
        assert_eq!(
            MessageSpec::unicast(p0, NodeId(99), 4).validate(&t),
            Err(SpecError::DestNotProcessor(NodeId(99)))
        );
    }

    #[test]
    fn rejects_detached_source() {
        // A processor stranded by a fault (no channels) cannot inject.
        let mut b = Topology::builder();
        let s = b.add_switch();
        let p0 = b.add_processor();
        let stranded = b.add_processor();
        b.link(p0, s).unwrap();
        let t = b.build();
        assert_eq!(
            MessageSpec::unicast(stranded, p0, 8).validate(&t),
            Err(SpecError::SourceDetached(stranded))
        );
        // A stranded *destination* is a routing-time concern, not a spec
        // error — any algorithm reports it as unreachable.
        MessageSpec::unicast(p0, stranded, 8).validate(&t).unwrap();
    }
}
