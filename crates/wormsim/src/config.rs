//! Simulation configuration: the latency model and buffer geometry of §4.

use desim::{Duration, QueueKind};

/// The three latency constants of the paper's experiments (§4):
///
/// > "The communication startup latency was 10 microseconds, router setup
/// > latency for each message header was 40 nanoseconds, and channel
/// > propagation latency was 10 nanoseconds."
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencyParams {
    /// Software/injection cost paid once per worm at the source.
    pub startup: Duration,
    /// Routing-decision cost paid once per header per router.
    pub router_setup: Duration,
    /// Time for one flit to cross one channel; also the per-channel
    /// bandwidth (one flit per `channel_prop`).
    pub channel_prop: Duration,
}

impl LatencyParams {
    /// The paper's values: 10 µs / 40 ns / 10 ns.
    pub const fn paper() -> Self {
        LatencyParams {
            startup: Duration::from_us(10),
            router_setup: Duration::from_ns(40),
            channel_prop: Duration::from_ns(10),
        }
    }
}

impl Default for LatencyParams {
    fn default() -> Self {
        Self::paper()
    }
}

/// Full simulator configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimConfig {
    /// Latency model.
    pub latency: LatencyParams,
    /// Input buffer capacity per channel, in flits. The paper's headline
    /// result holds at 1; §5 proposes studying larger values (ablation B).
    pub input_buffer_flits: usize,
    /// Output buffer capacity per channel, in flits.
    pub output_buffer_flits: usize,
    /// Watchdog: if no *real* flit moves anywhere in the network for this
    /// long while messages are in flight, declare deadlock. Must exceed any
    /// legitimate network-wide stall; the default (1 ms, i.e. 100 startup
    /// latencies) is orders of magnitude above any legal stall in the
    /// paper-scale experiments.
    pub watchdog: Duration,
    /// Hard cap on processed events — a backstop against runaway
    /// simulations (e.g. unbounded bubble generation in a deadlocked run
    /// with a generous watchdog).
    pub max_events: u64,
    /// Additional header flits per worm beyond the first. The paper
    /// models a single header flit carrying the destination set; real
    /// tree-based routers may need several flits to encode many
    /// destination addresses. Extra header flits travel like data flits
    /// (the routing decision still costs one router setup per hop) but
    /// lengthen every worm, so large destination sets pay a small,
    /// size-dependent serialization cost.
    pub extra_header_flits: u32,
    /// Which future-event-list implementation drives the run. Both kinds
    /// produce byte-identical outcomes (pinned by the golden-regression
    /// suite); [`QueueKind::Bucket`] is the fast default, [`QueueKind::Heap`]
    /// remains selectable as the reference implementation. `None` (the
    /// default) defers to [`QueueKind::from_env`], so an entire test run
    /// can be replayed on the reference heap via `WORMSIM_QUEUE=heap`
    /// without touching any call site; an explicit [`Self::with_queue`]
    /// always wins over the environment.
    pub queue: Option<QueueKind>,
    /// Periodic checkpointing cadence in nanoseconds of simulation time
    /// (`None` = off). When set, the engine serializes its complete
    /// mid-run state once per period — a pure observer riding a
    /// [`desim::Ticker`] beside the event queue, so every simulated
    /// outcome is byte-identical with checkpointing on or off. Where the
    /// snapshots go is chosen with
    /// [`NetworkSim::enable_checkpoints`](crate::NetworkSim::enable_checkpoints);
    /// with only this field set they feed a digest ledger.
    pub checkpoint_every_ns: Option<u64>,
}

impl SimConfig {
    /// The paper's configuration: paper latencies, single-flit buffers.
    pub const fn paper() -> Self {
        SimConfig {
            latency: LatencyParams::paper(),
            input_buffer_flits: 1,
            output_buffer_flits: 1,
            watchdog: Duration::from_us(1_000),
            max_events: u64::MAX,
            extra_header_flits: 0,
            queue: None,
            checkpoint_every_ns: None,
        }
    }

    /// Sets both buffer depths (ablation B in DESIGN.md).
    pub fn with_buffers(mut self, input: usize, output: usize) -> Self {
        assert!(input >= 1 && output >= 1, "buffers must hold >= 1 flit");
        self.input_buffer_flits = input;
        self.output_buffer_flits = output;
        self
    }

    /// Replaces the watchdog timeout.
    pub fn with_watchdog(mut self, watchdog: Duration) -> Self {
        self.watchdog = watchdog;
        self
    }

    /// Replaces the latency model.
    pub fn with_latency(mut self, latency: LatencyParams) -> Self {
        self.latency = latency;
        self
    }

    /// Sets the number of extra header flits (multi-flit address encoding).
    pub fn with_extra_header_flits(mut self, extra: u32) -> Self {
        self.extra_header_flits = extra;
        self
    }

    /// Selects the event-queue implementation (bucket wheel vs. reference
    /// binary heap; identical outcomes, different wall-clock speed). An
    /// explicit choice overrides the `WORMSIM_QUEUE` environment variable.
    pub fn with_queue(mut self, queue: QueueKind) -> Self {
        self.queue = Some(queue);
        self
    }

    /// The queue kind this configuration resolves to: the explicit choice
    /// if one was made, otherwise the `WORMSIM_QUEUE` environment
    /// selection (default [`QueueKind::Bucket`]).
    pub fn resolved_queue(&self) -> QueueKind {
        self.queue.unwrap_or_else(QueueKind::from_env)
    }

    /// Enables periodic engine checkpointing every `every_ns` nanoseconds
    /// of simulation time (see [`Self::checkpoint_every_ns`]).
    ///
    /// # Panics
    ///
    /// Panics on a zero cadence — that ticker never advances.
    pub fn with_checkpoint_every_ns(mut self, every_ns: u64) -> Self {
        assert!(every_ns > 0, "checkpoint cadence must be non-zero");
        self.checkpoint_every_ns = Some(every_ns);
        self
    }
}

impl Default for SimConfig {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_constants() {
        let l = LatencyParams::paper();
        assert_eq!(l.startup.as_ns(), 10_000);
        assert_eq!(l.router_setup.as_ns(), 40);
        assert_eq!(l.channel_prop.as_ns(), 10);
        let c = SimConfig::paper();
        assert_eq!(c.input_buffer_flits, 1);
        assert_eq!(c.output_buffer_flits, 1);
    }

    #[test]
    fn builder_setters() {
        let c = SimConfig::paper()
            .with_buffers(4, 2)
            .with_watchdog(Duration::from_us(77))
            .with_extra_header_flits(3);
        assert_eq!(c.input_buffer_flits, 4);
        assert_eq!(c.output_buffer_flits, 2);
        assert_eq!(c.watchdog.as_ns(), 77_000);
        assert_eq!(c.extra_header_flits, 3);
        assert_eq!(SimConfig::paper().extra_header_flits, 0);
    }

    #[test]
    #[should_panic(expected = "buffers must hold")]
    fn zero_buffers_rejected() {
        SimConfig::paper().with_buffers(0, 1);
    }

    #[test]
    fn checkpoint_cadence_builder() {
        assert_eq!(SimConfig::paper().checkpoint_every_ns, None);
        let c = SimConfig::paper().with_checkpoint_every_ns(50_000);
        assert_eq!(c.checkpoint_every_ns, Some(50_000));
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_checkpoint_cadence_rejected() {
        SimConfig::paper().with_checkpoint_every_ns(0);
    }

    #[test]
    fn explicit_queue_choice_beats_environment() {
        // paper() leaves the kind open (env-resolvable); with_queue pins it.
        assert_eq!(SimConfig::paper().queue, None);
        let c = SimConfig::paper().with_queue(QueueKind::Heap);
        assert_eq!(c.queue, Some(QueueKind::Heap));
        assert_eq!(c.resolved_queue(), QueueKind::Heap);
    }
}
