//! Flits — the flow-control units of wormhole routing.

use std::fmt;

/// Index of a message within one simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct MsgId(pub u32);

impl MsgId {
    /// As a vector index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for MsgId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "m{}", self.0)
    }
}

/// What a flit is. `seq` numbers the *real* flits of a message 0 (header)
/// through `len-1` (tail); bubbles carry no sequence number because they are
/// filler injected by branch routers, not part of the message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlitKind {
    /// The routing-probe flit; carries the destination set (modelled as
    /// header state held by the engine, see `routing`). Sequence 0.
    Header,
    /// A payload flit with its sequence number (1 ..= len-2).
    Data(u32),
    /// The final flit (sequence `len - 1`); replicating it releases the
    /// message's channels at each router it passes.
    Tail(u32),
    /// An empty "bubble" flit (§3.2): injected into a free output buffer of
    /// a branch whose sibling is blocked, so the fast head keeps advancing
    /// without hardware synchronization. Discarded at destinations.
    Bubble,
}

/// One flit in a buffer or on a wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Flit {
    /// Owning message.
    pub msg: MsgId,
    /// Payload kind.
    pub kind: FlitKind,
}

impl Flit {
    /// Constructs the `seq`-th real flit of a message of length `len`.
    ///
    /// # Panics
    ///
    /// Panics if `seq >= len`.
    pub fn nth(msg: MsgId, seq: u32, len: u32) -> Flit {
        assert!(seq < len, "flit sequence {seq} out of range for len {len}");
        let kind = if seq == 0 {
            FlitKind::Header
        } else if seq == len - 1 {
            FlitKind::Tail(seq)
        } else {
            FlitKind::Data(seq)
        };
        Flit { msg, kind }
    }

    /// A bubble flit for `msg`.
    pub fn bubble(msg: MsgId) -> Flit {
        Flit {
            msg,
            kind: FlitKind::Bubble,
        }
    }

    /// True for anything except bubbles.
    #[inline]
    pub fn is_real(&self) -> bool {
        !matches!(self.kind, FlitKind::Bubble)
    }

    /// The sequence number of a real flit; `None` for bubbles.
    pub fn seq(&self) -> Option<u32> {
        match self.kind {
            FlitKind::Header => Some(0),
            FlitKind::Data(s) | FlitKind::Tail(s) => Some(s),
            FlitKind::Bubble => None,
        }
    }

    /// True if this is the tail flit.
    #[inline]
    pub fn is_tail(&self) -> bool {
        matches!(self.kind, FlitKind::Tail(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nth_classifies_header_data_tail() {
        let m = MsgId(3);
        assert_eq!(Flit::nth(m, 0, 128).kind, FlitKind::Header);
        assert_eq!(Flit::nth(m, 1, 128).kind, FlitKind::Data(1));
        assert_eq!(Flit::nth(m, 126, 128).kind, FlitKind::Data(126));
        assert_eq!(Flit::nth(m, 127, 128).kind, FlitKind::Tail(127));
    }

    #[test]
    fn two_flit_message_is_header_plus_tail() {
        let m = MsgId(0);
        assert_eq!(Flit::nth(m, 0, 2).kind, FlitKind::Header);
        assert_eq!(Flit::nth(m, 1, 2).kind, FlitKind::Tail(1));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn nth_rejects_overflow() {
        Flit::nth(MsgId(0), 128, 128);
    }

    #[test]
    fn seq_and_reality() {
        let m = MsgId(1);
        assert_eq!(Flit::nth(m, 0, 4).seq(), Some(0));
        assert_eq!(Flit::nth(m, 2, 4).seq(), Some(2));
        assert_eq!(Flit::nth(m, 3, 4).seq(), Some(3));
        assert!(Flit::nth(m, 3, 4).is_tail());
        let b = Flit::bubble(m);
        assert_eq!(b.seq(), None);
        assert!(!b.is_real());
        assert!(!b.is_tail());
        assert!(Flit::nth(m, 1, 4).is_real());
    }

    #[test]
    fn flit_is_small() {
        // Buffers hold VecDeque<Flit>; keep the element compact.
        assert!(std::mem::size_of::<Flit>() <= 12);
    }
}
