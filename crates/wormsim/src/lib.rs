#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

//! # wormsim — flit-level event-driven wormhole network simulator
//!
//! A from-scratch reimplementation of the substrate the paper evaluated on
//! (the "Harvey Mudd MARS simulator, a flit-level event-driven wormhole
//! routing simulator", §4), faithful to the router mechanics of §3.2:
//!
//! * every unidirectional channel has a sender-side **output buffer** and a
//!   receiver-side **input buffer** (one flit deep by default — the paper's
//!   headline claim is deadlock freedom with single-flit buffers);
//! * a header entering a router waits `t_router` (40 ns), then **atomically
//!   enqueues a request** in the output channel request queue (OCRQ) of
//!   every channel it needs;
//! * a message acquires its channels only when **all** its requests sit at
//!   the heads of their OCRQs and all those channels are free; the header
//!   flit is then replicated to every acquired output buffer at once;
//! * each subsequent flit is replicated when **all** the message's output
//!   buffers have space; if some have space while a sibling is blocked,
//!   **bubble flits** are injected into the free ones so the independent
//!   heads of the multi-head worm keep advancing (asynchronous replication);
//! * replicating the tail releases the channels to the next OCRQ waiters;
//! * a flit crosses a channel in `t_channel` (10 ns) and occupies the output
//!   buffer for the duration, giving every channel a bandwidth of one flit
//!   per `t_channel`;
//! * message startup costs `t_startup` (10 µs) at the source before the
//!   worm's header enters the network.
//!
//! The simulator is **policy-free**: it executes whatever
//! [`RoutingAlgorithm`] it is given (SPAM lives in the `spam-core` crate,
//! plain up*/down* in `baselines`) and detects — rather than prevents —
//! deadlock, so property tests can both certify SPAM deadlock-free and show
//! that a deliberately broken router does deadlock (a positive control).
//!
//! Determinism: all state transitions are driven by a deterministic event
//! queue ([`desim`]); equal-time events fire in scheduling order. The same
//! topology, routing algorithm, and message set always produce identical
//! latencies.
//!
//! ```
//! use netgraph::Topology;
//! use wormsim::{MessageSpec, NetworkSim, SimConfig};
//! use wormsim::routing::OracleRouting;
//! use desim::Time;
//!
//! // p2 -- s0 -- s1 -- p3 : one unicast across two switches.
//! let mut b = Topology::builder();
//! let s0 = b.add_switch();
//! let s1 = b.add_switch();
//! let p2 = b.add_processor();
//! let p3 = b.add_processor();
//! b.link(p2, s0).unwrap();
//! b.link(s0, s1).unwrap();
//! b.link(s1, p3).unwrap();
//! let topo = b.build();
//!
//! let mut oracle = OracleRouting::new(&topo);
//! oracle.add_unicast_path(0, &[p2, s0, s1, p3]).unwrap();
//!
//! let mut sim = NetworkSim::new(&topo, oracle, SimConfig::paper());
//! sim.submit(MessageSpec::unicast(p2, p3, 128).tag(0).at(Time::ZERO)).unwrap();
//! let out = sim.run();
//! assert!(out.deadlock.is_none());
//! let lat = out.messages[0].latency().unwrap();
//! // startup 10us + 3 channels * 10ns + 2 routers * 40ns + 127 * 10ns pipeline
//! assert_eq!(lat.as_ns(), 10_000 + 30 + 80 + 1_270);
//! ```

pub mod channel;
pub mod config;
pub mod coverage;
// Engine-internal slab handles and queue peeks are checked invariants —
// a failed lookup there is a simulator bug, never a runtime condition —
// so the engine (and its snapshot child module) is exempt from the
// crate-wide expect/unwrap lint gate below.
#[allow(clippy::expect_used, clippy::unwrap_used)]
pub mod engine;
pub mod flit;
pub mod message;
pub mod outcome;
pub mod routing;
pub mod trace;

pub use config::{LatencyParams, SimConfig};
pub use coverage::{CoverageBit, CoverageSet, Watermark, COVERAGE_BITS};
pub use desim::QueueKind;
pub use engine::{CheckpointSink, NetworkSim};
pub use flit::{Flit, FlitKind, MsgId};
pub use message::{MessageSpec, SpecError};
pub use outcome::{
    Counters, DeadlockInfo, EpochStats, FailureKind, MessageFailure, MessageResult, SimError,
    SimOutcome,
};
pub use routing::{CompletionHook, NoHook, RouteDecision, RouteError, RoutingAlgorithm};
pub use spam_metrics::{MetricsConfig, RunMetrics};
pub use spam_snapshot::{fnv1a, SnapReader, SnapWriter, SnapshotError};
pub use trace::{Trace, TraceEvent};
