//! The event-driven simulation engine.
//!
//! Three event types consume simulated time — message startup completion
//! (`SourceReady`), routing-decision completion (`RouteDecision`, one
//! router-setup latency after a header arrives at a switch), and wire
//! transfer completion (`WireDone`, one channel-propagation latency per
//! flit). Everything else — OCRQ acquisition, flit replication from input
//! to output buffers, bubble injection, channel release — is an
//! instantaneous state transition cascaded synchronously from those events,
//! matching the §4 cost model where only startup, router setup, and channel
//! propagation carry latency.
//!
//! A message's presence at a router is a **segment**, keyed by the channel
//! its flits arrive on (or by the message itself at its source). Keying by
//! input channel — not by node — matters: a legal SPAM walk under a
//! non-greedy selection policy may pass through the same switch twice
//! (e.g. up through it early, down through it later). Phase monotonicity
//! guarantees the two traversals use distinct input and output channels, so
//! per-channel segments model the physical router exactly.
//!
//! ## Hot-path layout
//!
//! Segments live in a generation-indexed [`Slab`]; every place that used to
//! key a `HashMap` — the OCRQ entry that must find its requesting segment,
//! the channel owner that refills a freed wire slot, the per-channel header
//! state consumed at a routing decision, the bubble-candidate list — now
//! carries a [`SlotId`] and resolves it with one array index. Intrusive
//! indices keep the cross-references navigable both ways: each channel
//! records the transit segment it feeds (`Chan::seg`) and the header states
//! parked at its receiving end (`Chan::hdrs`); each message records its
//! live segments (`MsgState::live_segs`) so teardown never scans the arena.
//! Generations make stale handles (a released segment still sitting in the
//! bubble-candidate list) resolve to `None` instead of aliasing a reused
//! slot.

use crate::channel::Chan;
use crate::config::SimConfig;
use crate::coverage::CoverageSet;
use crate::flit::{Flit, FlitKind, MsgId};
use crate::message::{MessageSpec, SpecError};
use crate::outcome::{
    Counters, DeadlockInfo, FailureKind, MessageFailure, MessageResult, SimError, SimOutcome,
};
use crate::routing::{CompletionHook, NoHook, RouteDecision, RoutingAlgorithm};
use crate::trace::{Trace, TraceEvent};
use desim::{Duration, Schedule, Ticker, Time};
use netgraph::{ChannelId, NodeId, Topology};
use spam_collections::{InlineVec, Slab, SlotId};
use spam_metrics::{ChannelScoreboard, GaugeSample, GaugeSeries, MetricsConfig, RunMetrics};

/// Telemetry recording state (see [`NetworkSim::enable_metrics`]). The
/// ticker lives *beside* the event queue — sampling never schedules a
/// queue event, so the event stream (and every digest-pinned outcome
/// field) is byte-identical with metrics on or off. Everything here is
/// allocated once at enable time; the per-event hooks and the sampler
/// only index and store.
struct MetricsState {
    ticker: Ticker,
    sample_every_ns: u64,
    series: GaugeSeries,
    channels: ChannelScoreboard,
}

#[derive(Debug, Clone, Copy)]
enum Event {
    /// Startup latency elapsed; the worm is ready at its source processor.
    SourceReady(MsgId),
    /// Router-setup latency elapsed for a header waiting at the receiving
    /// end of `in_ch`.
    RouteDecision { msg: MsgId, in_ch: ChannelId },
    /// A flit finished crossing this channel's wire.
    WireDone(ChannelId),
    /// A scheduled fault: the bidirectional link containing this channel
    /// dies now, tearing down every worm that holds it.
    LinkDown(ChannelId),
}

/// Where a segment's flits come from.
#[derive(Debug, Clone, Copy)]
enum SegInput {
    /// The source processor synthesizes the worm; `next` is the sequence
    /// number of the next flit to emit.
    Source { next: u32 },
    /// Flits arrive in the input buffer of this channel.
    Channel(ChannelId),
}

/// One traversal's state: the owning message, input side, and the output
/// channels it has requested (and, once `acquired`, owns). Output lists
/// stay inline up to four channels — a unicast hop requests one, a branch
/// router one per destination subtree — so the common case never touches
/// the heap.
#[derive(Debug)]
struct Segment {
    msg: MsgId,
    input: SegInput,
    outputs: InlineVec<ChannelId, 4>,
    acquired: bool,
}

#[derive(Debug, Clone, Copy)]
struct DestState {
    /// Sequence number the destination expects next (in-order invariant).
    next_seq: u32,
    done_at: Option<Time>,
}

struct MsgState {
    spec: MessageSpec,
    /// Flits on the wire: `spec.len` plus any extra header flits.
    worm_len: u32,
    /// `(destination, index into dests)`, sorted by node id for binary
    /// search — the per-delivered-flit lookup, hash-free.
    dest_slot: Vec<(NodeId, u32)>,
    dests: Vec<DestState>,
    remaining: usize,
    completed_at: Option<Time>,
    /// Set when a mid-run fault killed or rejected this message.
    failure: Option<MessageFailure>,
    /// Live segments of this worm (source + transits), for teardown.
    live_segs: InlineVec<SlotId, 4>,
}

/// The flit-level wormhole network simulator. See the crate docs for the
/// modelled mechanics and [`crate::SimConfig`] for parameters.
pub struct NetworkSim<'a, R: RoutingAlgorithm> {
    topo: &'a Topology,
    routing: R,
    cfg: SimConfig,
    sched: Schedule<Event>,
    chans: Vec<Chan>,
    msgs: Vec<MsgState>,
    /// Arena of live worm-router traversals; all cross-references into it
    /// ([`Chan::ocrq`], [`Chan::owner`], [`Chan::seg`],
    /// [`MsgState::live_segs`], `bubble_candidates`) are generation-checked
    /// [`SlotId`]s.
    segs: Slab<Segment>,
    /// Arena of in-flight header states (`R::Header` travels with the worm
    /// between routing decisions); indexed from [`Chan::hdrs`].
    headers: Slab<R::Header>,
    /// The routing algorithm's reusable working memory (one per run).
    route_scratch: R::Scratch,
    /// Reused output buffer for routing decisions.
    route_out: RouteDecision<R::Header>,
    counters: Counters,
    /// First simulation error; set once, aborts the run at the next event
    /// boundary (state mutated within the failing instant is not rolled
    /// back — the outcome is diagnostic, not resumable).
    error: Option<SimError>,
    last_progress: Time,
    /// Messages past startup but not yet fully delivered.
    active: usize,
    pending_completions: Vec<MsgId>,
    /// Protocol-level trace; `None` unless enabled (zero hot-loop cost).
    trace: Option<Trace>,
    /// Fabric telemetry; `None` unless enabled (zero hot-loop cost).
    metrics: Option<MetricsState>,
    /// Branch segments that found a sibling output blocked during this
    /// simulated instant. Bubble insertion is deferred to the end of the
    /// instant: hardware replicates at cycle boundaries where all buffers
    /// freed in the same cycle are seen free *together*, while our events
    /// within one timestamp fire serially — inserting a bubble eagerly
    /// would steal a slot that the real flit could claim a few events
    /// later in the same instant, livelocking symmetric branches.
    bubble_candidates: Vec<SlotId>,
    /// Per-channel death mask for live-reconfiguration runs (all-false on
    /// static networks). A dead channel carries nothing: in-flight flits
    /// are lost at the wire, and any worm touching it is torn down.
    dead: Vec<bool>,
    /// Sorted, deduplicated times of scheduled fault events — the epoch
    /// boundaries reported on the outcome. Non-empty iff this is a
    /// live-reconfiguration run, which switches routing failures from
    /// run-aborting to per-message (teardown / unreachable).
    fault_times: Vec<Time>,
    /// Periodic full-state checkpointing; `None` unless enabled (zero
    /// hot-loop cost). Boxed: the writer buffer and sink live off the
    /// engine's hot cache lines. Like metrics, a pure observer — every
    /// simulated outcome is byte-identical with checkpointing on or off.
    checkpoint: Option<Box<snapshot::CheckpointState>>,
}

impl<'a, R: RoutingAlgorithm> NetworkSim<'a, R> {
    /// Creates a simulator over `topo` driven by `routing`.
    pub fn new(topo: &'a Topology, routing: R, cfg: SimConfig) -> Self {
        let mut sim = NetworkSim {
            topo,
            routing,
            sched: Schedule::with_kind(cfg.resolved_queue()),
            cfg,
            chans: (0..topo.num_channels()).map(|_| Chan::new()).collect(),
            msgs: Vec::new(),
            segs: Slab::new(),
            headers: Slab::new(),
            route_scratch: R::Scratch::default(),
            route_out: RouteDecision::default(),
            counters: Counters::default(),
            error: None,
            last_progress: Time::ZERO,
            active: 0,
            pending_completions: Vec::new(),
            trace: None,
            metrics: None,
            bubble_candidates: Vec::new(),
            dead: vec![false; topo.num_channels()],
            fault_times: Vec::new(),
            checkpoint: None,
        };
        if let Some(every_ns) = sim.cfg.checkpoint_every_ns {
            let (sink, _) = snapshot::CheckpointSink::digests();
            sim.enable_checkpoints(Duration::from_ns(every_ns), sink);
        }
        sim
    }

    /// Schedules the bidirectional link containing `link` to die at `at`
    /// (clamped to the current time). From that instant on the link
    /// carries nothing; every worm holding, waiting on, or routing into
    /// either direction is torn down with [`SimError::TornDown`].
    ///
    /// Scheduling any fault switches the run into **live-reconfiguration
    /// mode**: routing failures no longer abort the run but fail the
    /// affected message ([`MessageFailure`] on its result), and fault
    /// instants become epoch boundaries in [`SimOutcome::fault_times`].
    pub fn schedule_link_down(&mut self, at: Time, link: ChannelId) {
        assert!(
            link.index() < self.topo.num_channels(),
            "{link} is not a channel of this topology"
        );
        let at = at.max(self.sched.now());
        self.note_wheel_horizon(at);
        self.sched.at_or_now(at, Event::LinkDown(link));
        if let Err(pos) = self.fault_times.binary_search(&at) {
            self.fault_times.insert(pos, at);
        }
    }

    /// Schedules switch `s` to die at `at`: every link incident to it dies
    /// in one instant (stranding its processor). See
    /// [`Self::schedule_link_down`].
    ///
    /// # Panics
    ///
    /// Panics if `s` is not a switch.
    pub fn schedule_switch_down(&mut self, at: Time, s: NodeId) {
        assert!(self.topo.is_switch(s), "{s} is not a switch");
        for &c in self.topo.out_channels(s) {
            self.schedule_link_down(at, c);
        }
    }

    /// True when fault events are scheduled: per-message failure semantics
    /// instead of run-aborting errors.
    fn live_mode(&self) -> bool {
        !self.fault_times.is_empty()
    }

    /// Enables protocol-level tracing for this run (see [`crate::trace`]).
    pub fn enable_trace(&mut self) {
        self.trace = Some(Trace::default());
    }

    /// Enables fabric telemetry for this run (see [`spam_metrics`]): a
    /// periodic gauge sampler plus per-channel congestion accumulators,
    /// reported on [`SimOutcome::metrics`]. Telemetry is a pure observer
    /// — the simulated outcome is byte-identical with it on or off — and
    /// all recording state is preallocated here, so steady-state
    /// recording never allocates.
    pub fn enable_metrics(&mut self, cfg: MetricsConfig) {
        self.metrics = Some(MetricsState {
            ticker: Ticker::every(cfg.sample_every),
            sample_every_ns: cfg.sample_every.as_ns(),
            series: GaugeSeries::with_capacity(cfg.capacity),
            channels: ChannelScoreboard::new(self.topo.num_channels()),
        });
    }

    #[inline]
    fn emit(&mut self, f: impl FnOnce() -> TraceEvent) {
        if let Some(t) = self.trace.as_mut() {
            t.events.push(f());
        }
    }

    /// Carries channel `ch`'s OCRQ-depth time-integral up to `now`.
    /// Must run *before* any push/pop/removal on that channel's OCRQ so
    /// the piecewise-constant integral bills the old depth for the
    /// elapsed interval (see [`ChannelScoreboard::ocrq_carry`]).
    #[inline]
    fn metrics_ocrq_carry(&mut self, ch: ChannelId, now: Time) {
        if let Some(m) = self.metrics.as_mut() {
            m.channels
                .ocrq_carry(ch.index(), self.chans[ch.index()].ocrq.len(), now.as_ns());
        }
    }

    /// Snapshots the engine gauges as they stand right now, stamped with
    /// `at`. Reads only — the sampler's single observation point.
    fn gauge_at(&self, at: Time) -> GaugeSample {
        let mut ocrq_total = 0u32;
        let mut ocrq_max = 0u32;
        for c in &self.chans {
            let d = c.ocrq.len() as u32;
            ocrq_total += d;
            ocrq_max = ocrq_max.max(d);
        }
        GaugeSample {
            at_ns: at.as_ns(),
            queue: self.sched.queue_occupancy(),
            live_worms: self.active as u32,
            live_segments: self.segs.len() as u32,
            ocrq_total,
            ocrq_max,
            epoch: self.fault_times.partition_point(|&ft| ft <= at) as u32,
            delivered: self.counters.messages_completed,
            torn_down: self.counters.messages_torn_down,
            unreachable: self.counters.messages_unreachable,
        }
    }

    /// Fires every due sampler tick `<= upto` (the timestamp of the event
    /// about to be handled): each tick snapshots the engine gauges as of
    /// the state *before* that instant's events. Pure observation — reads
    /// engine state, writes only into the preallocated ring.
    fn sample_through(&mut self, upto: Time) {
        let Some(mut m) = self.metrics.take() else {
            return;
        };
        if m.ticker.next_at() <= upto {
            // Gauges only change at events, so every tick in this drain
            // window sees the same fabric state; compute it once and
            // re-stamp the time (and the time-dependent epoch) per tick.
            let base = self.gauge_at(Time::ZERO);
            let fault_times = &self.fault_times;
            m.ticker.drain_through(upto, |at| {
                let mut g = base;
                g.at_ns = at.as_ns();
                g.epoch = fault_times.partition_point(|&ft| ft <= at) as u32;
                m.series.push(g);
            });
        }
        self.metrics = Some(m);
    }

    /// Records the closing telemetry sample: the fabric as the run
    /// finished, stamped with the final clock. Cadence ticks observe
    /// start-of-instant state, so this is the one sample that reflects
    /// the very last events.
    fn sample_final(&mut self, end: Time) {
        let Some(mut m) = self.metrics.take() else {
            return;
        };
        let g = self.gauge_at(end);
        m.series.push(g);
        self.metrics = Some(m);
    }

    /// Current simulation time.
    pub fn now(&self) -> Time {
        self.sched.now()
    }

    /// The live segment behind `sid`'s `i`-th output channel. Used for
    /// index-based re-borrows on mutation paths (no clone of the list).
    #[inline]
    fn seg_output(&self, sid: SlotId, i: usize) -> ChannelId {
        self.segs
            .get(sid)
            .expect("segment live during traversal")
            .outputs[i]
    }

    /// Submits a message. `spec.gen_time` must not be in the simulator's
    /// past. Returns the message id used in the outcome.
    pub fn submit(&mut self, spec: MessageSpec) -> Result<MsgId, SpecError> {
        spec.validate(self.topo)?;
        assert!(
            spec.gen_time >= self.sched.now(),
            "message generated in the past"
        );
        let id = MsgId(self.msgs.len() as u32);
        let mut dest_slot: Vec<(NodeId, u32)> = spec
            .dests
            .iter()
            .enumerate()
            .map(|(i, d)| (*d, i as u32))
            .collect();
        dest_slot.sort_unstable_by_key(|&(d, _)| d);
        let dests = vec![
            DestState {
                next_seq: 0,
                done_at: None,
            };
            spec.dests.len()
        ];
        let remaining = spec.dests.len();
        let worm_len = spec.len + self.cfg.extra_header_flits;
        let ready_at = spec.gen_time + self.cfg.latency.startup;
        self.note_wheel_horizon(ready_at);
        self.sched.at(ready_at, Event::SourceReady(id));
        self.msgs.push(MsgState {
            spec,
            worm_len,
            dest_slot,
            dests,
            remaining,
            completed_at: None,
            failure: None,
            live_segs: InlineVec::new(),
        });
        Ok(id)
    }

    /// Runs to completion (or deadlock) with no completion hook.
    pub fn run(self) -> SimOutcome {
        self.run_with_hook(&mut NoHook)
    }

    /// Runs to completion (or deadlock). The hook fires once per completed
    /// message and may inject follow-up messages.
    pub fn run_with_hook(mut self, hook: &mut dyn CompletionHook) -> SimOutcome {
        let mut deadlock: Option<DeadlockInfo> = None;
        while let Some(next_time) = self.sched.peek_time() {
            // Watchdog: real-flit progress must occur while work is active.
            if self.active > 0 && next_time.saturating_since(self.last_progress) > self.cfg.watchdog
            {
                deadlock = Some(self.deadlock_info(next_time, false));
                break;
            }
            if self.counters.events >= self.cfg.max_events {
                deadlock = Some(self.deadlock_info(next_time, false));
                break;
            }
            // Telemetry ticks due at or before this instant fire now,
            // observing the fabric as it stood *before* the instant's
            // events. The sampler never fires past the last event.
            if self.metrics.is_some() {
                self.sample_through(next_time);
            }
            // Checkpoint ticks share the sampler's semantics: they
            // serialize the engine as it stood before this instant's
            // events, without touching the event stream.
            if self.checkpoint.is_some() {
                self.checkpoint_through(next_time, &*hook);
            }
            let (t, ev) = self.sched.next().expect("peeked event exists");
            self.counters.events += 1;
            self.handle(t, ev);
            if self.error.is_some() {
                break;
            }
            // Completion hooks run between events; they may submit. A
            // hook that breaks its contract (invalid spec, or a
            // generation time before the completion instant) aborts the
            // run with a typed error, never a panic.
            'hooks: while let Some(m) = self.pending_completions.pop() {
                let specs = hook.on_complete(m, &self.msgs[m.index()].spec, t);
                for s in specs {
                    if s.gen_time < t || self.submit(s).is_err() {
                        let e = SimError::HookSpec { msg: m };
                        self.counters.coverage.note_sim_error(&e);
                        self.error = Some(e);
                        break 'hooks;
                    }
                }
            }
            if self.error.is_some() {
                break;
            }
            // End of this simulated instant: resolve deferred bubbles.
            if self.sched.peek_time() != Some(t) {
                self.flush_bubbles(t);
            }
        }
        if deadlock.is_none()
            && self.error.is_none()
            && self
                .msgs
                .iter()
                .any(|m| m.completed_at.is_none() && m.failure.is_none())
        {
            let now = self.sched.now();
            deadlock = Some(self.deadlock_info(now, true));
        }
        if deadlock.is_none() && self.error.is_none() {
            // Resource-hygiene invariant, covering teardowns too: a clean
            // end (every message delivered or failed) leaves no reserved
            // channel, no OCRQ entry, no segment, and no header state
            // behind.
            debug_assert!(self.chans.iter().all(|c| c.is_quiescent()));
            debug_assert!(self.segs.is_empty());
            debug_assert!(self.headers.is_empty());
            debug_assert!(self.msgs.iter().all(|m| m.live_segs.is_empty()));
        }
        // Run-level coverage: how the run ended and how many routing
        // epochs it crossed. Computed from engine state only, so the
        // record is identical under both event-queue implementations.
        if let Some(d) = &deadlock {
            self.counters.coverage.set(if d.queue_exhausted {
                CoverageSet::DEADLOCK_QUEUE_EXHAUSTED
            } else {
                CoverageSet::DEADLOCK_WATCHDOG
            });
        }
        if self.counters.bubbles_created > 0 {
            self.counters.coverage.set(CoverageSet::BUBBLES);
        }
        if self.fault_times.len() >= 2 {
            self.counters.coverage.set(CoverageSet::MULTI_EPOCH);
        }
        let epochs = (self.fault_times.len() + 1) as u32;
        self.counters.coverage.epochs = self.counters.coverage.epochs.max(epochs);
        // Close out telemetry: carry every OCRQ integral to the final
        // clock, then record one last sample at the end time so the
        // series' tail reflects the finished run.
        if self.metrics.is_some() {
            let end = self.sched.now();
            for i in 0..self.chans.len() {
                self.metrics_ocrq_carry(ChannelId(i as u32), end);
            }
            self.sample_final(end);
        }
        let quiescent = deadlock.is_none()
            && self.error.is_none()
            && self.chans.iter().all(|c| c.is_quiescent())
            && self.segs.is_empty()
            && self.headers.is_empty();
        let messages = self
            .msgs
            .into_iter()
            .map(|m| MessageResult {
                spec: m.spec,
                completed_at: m.completed_at,
                dest_done_at: m.dests.iter().map(|d| d.done_at).collect(),
                failure: m.failure,
            })
            .collect();
        SimOutcome {
            messages,
            deadlock,
            error: self.error.take(),
            end_time: self.sched.now(),
            quiescent,
            counters: self.counters,
            channel_crossings: self.chans.iter().map(|c| c.crossings).collect(),
            fault_times: std::mem::take(&mut self.fault_times),
            trace: self.trace.take().unwrap_or_default(),
            metrics: self.metrics.take().map(|m| RunMetrics {
                sample_every_ns: m.sample_every_ns,
                series: m.series,
                channels: m.channels.into_accums(),
            }),
        }
    }

    /// Records the first simulation error; the run loop aborts at the next
    /// event boundary.
    fn fail(&mut self, e: SimError) {
        self.counters.coverage.note_sim_error(&e);
        if self.error.is_none() {
            self.error = Some(e);
        }
    }

    /// Coverage: an event scheduled at `when` whose timestamp differs
    /// from the current clock above the bucket wheel's span would land on
    /// the wheel's overflow list. Detected here from engine state (not
    /// queue internals), so the signal is identical under both event
    /// queues — the equivalence suite pins `Counters` equality.
    fn note_wheel_horizon(&mut self, when: Time) {
        if (when.as_ns() ^ self.sched.now().as_ns()) >= desim::WHEEL_SPAN_NS {
            self.counters.coverage.set(CoverageSet::WHEEL_OVERFLOW);
            self.counters.coverage.wheel_deferrals += 1;
        }
    }

    fn deadlock_info(&self, at: Time, queue_exhausted: bool) -> DeadlockInfo {
        DeadlockInfo {
            detected_at: at,
            last_progress: self.last_progress,
            stuck_messages: self
                .msgs
                .iter()
                .enumerate()
                .filter(|(_, m)| m.completed_at.is_none() && m.failure.is_none())
                .map(|(i, _)| MsgId(i as u32))
                .collect(),
            queue_exhausted,
        }
    }

    fn handle(&mut self, now: Time, ev: Event) {
        match ev {
            Event::SourceReady(msg) => self.on_source_ready(now, msg),
            Event::RouteDecision { msg, in_ch } => self.on_route_decision(now, msg, in_ch),
            Event::WireDone(ch) => self.on_wire_done(now, ch),
            Event::LinkDown(ch) => self.on_link_down(now, ch),
        }
    }

    fn on_source_ready(&mut self, now: Time, msg: MsgId) {
        self.active += 1;
        self.last_progress = now;
        let src = self.msgs[msg.index()].spec.src;
        self.emit(|| TraceEvent::SourceReady { msg, src, at: now });
        let out = self.topo.out_channels(src);
        // Spec validation rejects detached sources at submit time.
        assert_eq!(out.len(), 1, "source {src} must be an attached processor");
        let inj = out[0];
        let header = match self.routing.initial_header(&self.msgs[msg.index()].spec) {
            Ok(h) => h,
            Err(error) => {
                let error = SimError::Route {
                    msg,
                    node: src,
                    error,
                };
                if self.live_mode() {
                    // A destination lost to the dead zone: this message is
                    // unreachable; the rest of the traffic keeps flowing.
                    self.counters
                        .coverage
                        .set(CoverageSet::UNREACHABLE_AT_SOURCE);
                    self.counters.coverage.note_sim_error(&error);
                    self.msgs[msg.index()].failure = Some(MessageFailure {
                        at: now,
                        kind: FailureKind::Unreachable,
                        error,
                    });
                    self.counters.messages_unreachable += 1;
                    self.active -= 1;
                    return;
                }
                // Static network: abort with a typed error before any flit
                // enters the network.
                return self.fail(error);
            }
        };
        if self.dead[inj.index()] {
            // The source's own injection link died: the worm cannot even
            // enter the network. Nothing was reserved yet.
            self.counters
                .coverage
                .set(CoverageSet::SOURCE_INJECTION_DEAD);
            self.teardown(
                now,
                msg,
                SimError::TornDown { msg, channel: inj },
                FailureKind::Unreachable,
            );
            return;
        }
        if self.topo.is_switch(self.topo.channel(inj).dst) {
            let hid = self.headers.insert(header);
            self.chans[inj.index()].hdrs.push((msg, hid));
        }
        let sid = self.segs.insert(Segment {
            msg,
            input: SegInput::Source { next: 0 },
            outputs: InlineVec::from_slice(&[inj]),
            acquired: false,
        });
        self.msgs[msg.index()].live_segs.push(sid);
        self.metrics_ocrq_carry(inj, now);
        self.chans[inj.index()].ocrq.push_back((msg, sid));
        let depth = self.chans[inj.index()].ocrq.len() as u32;
        self.counters.coverage.note_ocrq_depth(depth);
        self.try_acquire(now, sid);
    }

    fn on_route_decision(&mut self, now: Time, msg: MsgId, in_ch: ChannelId) {
        let node = self.topo.channel(in_ch).dst;
        self.chans[in_ch.index()].route_pending = false;
        if self.msgs[msg.index()].failure.is_some() {
            // Stale decision: a fault tore this worm down after the
            // router-setup event was scheduled. Its header is gone from
            // the input buffer; let the next waiting header (if any)
            // proceed.
            self.process_in_buf(now, in_ch);
            return;
        }
        debug_assert!(
            matches!(
                self.chans[in_ch.index()].in_buf.front(),
                Some(f) if f.msg == msg && f.kind == FlitKind::Header
            ),
            "header must still be at the input-buffer head during setup"
        );
        self.counters.seg_lookups += 1;
        let header = {
            let hdrs = &mut self.chans[in_ch.index()].hdrs;
            let pos = hdrs
                .iter()
                .position(|&(m, _)| m == msg)
                .expect("header state travels with the worm");
            let (_, hid) = hdrs.swap_remove(pos);
            self.headers.remove(hid).expect("header handle live")
        };
        // The decision buffer and the algorithm's scratch are reused across
        // every routing call of the run — the per-hop path allocates
        // nothing once their capacities settle.
        let mut decision = std::mem::take(&mut self.route_out);
        decision.clear();
        self.apply_route_decision(now, msg, in_ch, node, header, &mut decision);
        self.route_out = decision;
    }

    /// Consults the routing algorithm for `header` at `node` and turns the
    /// decision into segment + OCRQ state (`decision` is the reused output
    /// buffer, already cleared).
    fn apply_route_decision(
        &mut self,
        now: Time,
        msg: MsgId,
        in_ch: ChannelId,
        node: NodeId,
        header: R::Header,
        decision: &mut RouteDecision<R::Header>,
    ) {
        if let Err(error) = self.routing.route(
            node,
            in_ch,
            &header,
            &self.msgs[msg.index()].spec,
            &mut self.route_scratch,
            decision,
        ) {
            let error = SimError::Route { msg, node, error };
            if self.live_mode() {
                // A worm routed into a dead end (e.g. its pre-fault
                // labeling no longer matches the surviving channels):
                // a reconfiguration casualty, not a run abort.
                self.counters.coverage.set(CoverageSet::ROUTE_DEADEND_LIVE);
                self.teardown(now, msg, error, FailureKind::TornDown);
                self.wake_channels(now);
                return;
            }
            return self.fail(error);
        }
        if decision.requests.is_empty() {
            return self.fail(SimError::EmptyDecision { msg, node });
        }
        if let Some(&(dead_ch, _)) = decision.requests.iter().find(|(c, _)| self.dead[c.index()]) {
            // The decision asks for a channel that died since the worm's
            // labeling was built: the worm ran into the fault. Tear it
            // down before any of the request set is enqueued.
            self.counters
                .coverage
                .set(CoverageSet::DECISION_HIT_DEAD_CHANNEL);
            self.teardown(
                now,
                msg,
                SimError::TornDown {
                    msg,
                    channel: dead_ch,
                },
                FailureKind::TornDown,
            );
            self.wake_channels(now);
            return;
        }
        let sid = self.segs.insert(Segment {
            msg,
            input: SegInput::Channel(in_ch),
            outputs: InlineVec::new(),
            acquired: false,
        });
        debug_assert!(
            self.chans[in_ch.index()].seg.is_none(),
            "one channel delivers one header per worm"
        );
        self.chans[in_ch.index()].seg = Some(sid);
        self.msgs[msg.index()].live_segs.push(sid);
        for (ch, st) in decision.requests.drain(..) {
            let rec = self.topo.channel(ch);
            if rec.src != node {
                return self.fail(SimError::ForeignChannel {
                    msg,
                    node,
                    channel: ch,
                });
            }
            if self
                .segs
                .get(sid)
                .expect("just inserted")
                .outputs
                .contains(&ch)
            {
                return self.fail(SimError::DuplicateRequest {
                    msg,
                    node,
                    channel: ch,
                });
            }
            self.segs
                .get_mut(sid)
                .expect("just inserted")
                .outputs
                .push(ch);
            if self.topo.is_switch(rec.dst) {
                // Hard assert (like the pre-arena reverse-map insert): a
                // worm re-requesting a channel is a phase-monotonicity
                // violation, and proceeding would corrupt the per-channel
                // header list. The list holds a couple of entries.
                assert!(
                    !self.chans[ch.index()].hdrs.iter().any(|&(m, _)| m == msg),
                    "{msg} requested {ch} twice; phase monotonicity violated"
                );
                let hid = self.headers.insert(st);
                self.chans[ch.index()].hdrs.push((msg, hid));
            }
            // Hard assert for the same reason: a duplicate OCRQ entry
            // would make teardown's position-based removal drop the wrong
            // waiter. Requests are ~one per worm per router (not per
            // flit), so the queue scan stays off the per-flit path.
            assert!(
                !self.chans[ch.index()].ocrq.iter().any(|&(m, _)| m == msg),
                "{msg} already queued on {ch}"
            );
            // Atomic enqueue: the whole request set lands in this one event
            // before any other message can enqueue at this router (§3.2).
            self.metrics_ocrq_carry(ch, now);
            self.chans[ch.index()].ocrq.push_back((msg, sid));
            let depth = self.chans[ch.index()].ocrq.len() as u32;
            self.counters.coverage.note_ocrq_depth(depth);
        }
        if self.trace.is_some() {
            let channels = crate::trace::ChannelList::from_slice(
                &self.segs.get(sid).expect("just inserted").outputs,
            );
            self.emit(|| TraceEvent::Requested {
                msg,
                node,
                channels,
                at: now,
            });
        }
        self.try_acquire(now, sid);
    }

    fn on_wire_done(&mut self, now: Time, ch: ChannelId) {
        let flit = {
            let c = &mut self.chans[ch.index()];
            debug_assert!(c.wire_busy);
            c.wire_busy = false;
            c.reserved_in -= 1;
            c.out_buf.pop_front().expect("in-flight flit in out_buf")
        };
        // A flit crossing a channel that died mid-transfer — or belonging
        // to a worm that was torn down — is lost on the wire, not
        // delivered into the input buffer.
        let dropped = self.dead[ch.index()] || self.msgs[flit.msg.index()].failure.is_some();
        if !dropped {
            let c = &mut self.chans[ch.index()];
            c.in_buf.push_back(flit);
            c.crossings += 1;
            if flit.kind == FlitKind::Header {
                self.emit(|| TraceEvent::HeaderArrived {
                    msg: flit.msg,
                    channel: ch,
                    at: now,
                });
            }
        }
        self.counters.wire_transfers += 1;
        if let Some(m) = self.metrics.as_mut() {
            // Every transfer — including a flit dropped on a dying link —
            // held this wire for one propagation delay; billing all of
            // them keeps `sum(busy_ns) == wire_transfers * t_channel`
            // exact.
            m.channels
                .wire_busy(ch.index(), self.cfg.latency.channel_prop.as_ns());
        }
        if self.dead[ch.index()] {
            // Dead wire: nothing refills it and nobody may acquire it.
            return;
        }
        if flit.is_real() && !dropped {
            self.last_progress = now;
        }
        // The sender-side slot freed up: the owner refills it, or — if the
        // channel was released and has now drained — the next OCRQ waiter
        // may acquire.
        match self.chans[ch.index()].owner {
            Some((_, sid)) => {
                self.counters.seg_lookups += 1;
                self.try_replicate(now, sid);
            }
            None => {
                if self.chans[ch.index()].free_for_acquisition() {
                    if let Some(&(_, sid)) = self.chans[ch.index()].ocrq.front() {
                        self.counters.seg_lookups += 1;
                        self.try_acquire(now, sid);
                    }
                }
            }
        }
        self.try_start_wire(ch);
        self.process_in_buf(now, ch);
    }

    /// A scheduled fault fires: both directions of the link die, and every
    /// worm holding, waiting on, or feeding through either direction is
    /// torn down. Fault events for an instant are scheduled before any
    /// same-instant wire/router events, so a link that dies at `t` carries
    /// nothing at `t`.
    fn on_link_down(&mut self, now: Time, link: ChannelId) {
        let pair = [link, self.topo.reverse(link)];
        if self.dead[link.index()] {
            return; // duplicate scheduling (e.g. a switch kill overlapping)
        }
        for &c in &pair {
            self.dead[c.index()] = true;
        }
        self.counters.links_killed += 1;
        self.emit(|| TraceEvent::LinkDown {
            channel: link,
            at: now,
        });
        // Victims: every message that owns, waits on, or buffers flits in
        // either direction, plus every segment wired to it. Sorted for
        // deterministic teardown (and trace) order.
        let mut victims: Vec<MsgId> = Vec::new();
        for &c in &pair {
            let chan = &self.chans[c.index()];
            victims.extend(chan.owner.map(|(m, _)| m));
            victims.extend(chan.ocrq.iter().map(|&(m, _)| m));
            victims.extend(chan.in_buf.iter().map(|f| f.msg));
            victims.extend(chan.out_buf.iter().map(|f| f.msg));
        }
        for (_, seg) in self.segs.iter() {
            let holds = seg.outputs.iter().any(|o| pair.contains(o))
                || matches!(seg.input, SegInput::Channel(ic) if pair.contains(&ic));
            if holds {
                victims.push(seg.msg);
            }
        }
        victims.sort_unstable();
        victims.dedup();
        for m in victims {
            self.teardown(
                now,
                m,
                SimError::TornDown {
                    msg: m,
                    channel: link,
                },
                FailureKind::TornDown,
            );
        }
        self.wake_channels(now);
        // Teardown released channels — a progress-like transition. Without
        // this, a storm arriving during a long network-wide stall could
        // trip the watchdog spuriously; fault events are finitely many, so
        // real deadlock still surfaces.
        self.last_progress = now;
    }

    /// Kills one message network-wide: retires all its segments, releases
    /// every channel it owns, flushes its OCRQ entries and header states,
    /// and purges its flits from all buffers (a flit mid-wire is dropped at
    /// its `WireDone`). Records the failure on the message.
    fn teardown(&mut self, now: Time, m: MsgId, cause: SimError, kind: FailureKind) {
        let ms = &mut self.msgs[m.index()];
        if ms.completed_at.is_some() || ms.failure.is_some() {
            return;
        }
        ms.failure = Some(MessageFailure {
            at: now,
            kind,
            error: cause,
        });
        self.counters.coverage.note_sim_error(&cause);
        match kind {
            FailureKind::TornDown => self.counters.messages_torn_down += 1,
            FailureKind::Unreachable => self.counters.messages_unreachable += 1,
        }
        // Teardown happens strictly after SourceReady (earlier the message
        // holds nothing and cannot be a victim), so it is always active.
        self.active -= 1;
        // Retire every live segment via the message's intrusive list — no
        // arena scan.
        let seg_ids = std::mem::take(&mut self.msgs[m.index()].live_segs);
        for &sid in &seg_ids {
            let seg = self
                .segs
                .remove(sid)
                .expect("live list tracks live segments");
            debug_assert_eq!(seg.msg, m);
            if seg.outputs.len() >= 2 {
                // A fault caught a branch-replication unit mid-flight —
                // the rarest teardown shape (multi-head worm partially
                // delivered).
                self.counters
                    .coverage
                    .set(CoverageSet::TEARDOWN_DURING_BRANCH);
            }
            if let SegInput::Channel(ic) = seg.input {
                debug_assert_eq!(self.chans[ic.index()].seg, Some(sid));
                self.chans[ic.index()].seg = None;
            }
            for &o in &seg.outputs {
                // Carry at the pre-removal depth: a flushed waiter's
                // parked time up to this instant still counts.
                self.metrics_ocrq_carry(o, now);
                let c = &mut self.chans[o.index()];
                if c.owner.map(|(om, _)| om) == Some(m) {
                    c.owner = None;
                }
                if let Some(pos) = c.ocrq.iter().position(|&(qm, _)| qm == m) {
                    c.ocrq.remove(pos);
                }
            }
        }
        // Header states are swept by message id, not via segment outputs: a
        // header's entry outlives its upstream segment (the segment releases
        // once the tail is replicated, while the header may still sit in an
        // input buffer waiting out the router-setup delay — and its stale
        // RouteDecision returns before consuming the entry). Flit purging
        // walks every channel anyway, so the header sweep rides along.
        for c in self.chans.iter_mut() {
            while let Some(pos) = c.hdrs.iter().position(|&(hm, _)| hm == m) {
                let (_, hid) = c.hdrs.swap_remove(pos);
                self.headers.remove(hid).expect("header handle live");
            }
            c.in_buf.retain(|f| f.msg != m);
            if c.out_buf.front().is_some_and(|f| f.msg == m) {
                // Output buffers hold one worm at a time; if the head is
                // mid-wire it must survive until its WireDone (which drops
                // it), everything behind it is purged in place.
                let keep = usize::from(c.wire_busy);
                c.out_buf.truncate(keep);
            }
        }
        // Stale candidates resolve to dead slots (generation mismatch).
        self.bubble_candidates
            .retain(|&sid| self.segs.contains(sid));
        self.emit(|| TraceEvent::TornDown {
            msg: m,
            channel: match cause {
                SimError::TornDown { channel, .. } => channel,
                _ => ChannelId(u32::MAX),
            },
            at: now,
        });
    }

    /// After teardowns freed channels, give every surviving waiter a
    /// chance to move: restart idle wires, retry head-of-OCRQ
    /// acquisitions, and drain input buffers. Ascending channel order
    /// keeps the cascade deterministic.
    fn wake_channels(&mut self, now: Time) {
        for i in 0..self.chans.len() {
            if self.dead[i] {
                continue;
            }
            let ch = ChannelId(i as u32);
            self.try_start_wire(ch);
            if self.chans[i].free_for_acquisition() {
                if let Some(&(_, sid)) = self.chans[i].ocrq.front() {
                    self.counters.seg_lookups += 1;
                    self.try_acquire(now, sid);
                }
            }
            self.process_in_buf(now, ch);
        }
    }

    /// Starts a wire transfer if a flit is waiting, the wire is idle, and
    /// the receiver will have a slot.
    fn try_start_wire(&mut self, ch: ChannelId) {
        if self.dead[ch.index()] {
            return; // dead wires carry nothing
        }
        let cap = self.cfg.input_buffer_flits;
        let c = &mut self.chans[ch.index()];
        if !c.wire_busy && !c.out_buf.is_empty() && c.in_has_space(cap) {
            c.wire_busy = true;
            c.reserved_in += 1;
            self.sched
                .after(self.cfg.latency.channel_prop, Event::WireDone(ch));
        }
    }

    /// Attempts the all-or-nothing acquisition of §3.2: every requested
    /// channel must have this segment at its OCRQ head and be free. On
    /// success the header flit is replicated to all outputs at once.
    fn try_acquire(&mut self, now: Time, sid: SlotId) {
        self.counters.seg_lookups += 1;
        let Some(seg) = self.segs.get(sid) else {
            return;
        };
        if seg.acquired {
            return;
        }
        let msg = seg.msg;
        // The header must be ready on the input side.
        match seg.input {
            SegInput::Source { next } => debug_assert_eq!(next, 0),
            SegInput::Channel(ic) => match self.chans[ic.index()].in_buf.front() {
                Some(f) if f.msg == msg && f.kind == FlitKind::Header => {}
                _ => return,
            },
        }
        let ready = seg.outputs.iter().all(|&o| {
            let c = &self.chans[o.index()];
            c.ocrq.front().map(|&(_, s)| s) == Some(sid) && c.free_for_acquisition()
        });
        if !ready {
            if let Some(m) = self.metrics.as_mut() {
                // Bill each output that blocked this all-or-nothing
                // attempt (observation only; the attempt already failed).
                for &o in seg.outputs.iter() {
                    let c = &self.chans[o.index()];
                    if c.ocrq.front().map(|&(_, s)| s) != Some(sid) || !c.free_for_acquisition() {
                        m.channels.header_stall(o.index());
                    }
                }
            }
            return;
        }
        let input = seg.input;
        let nout = seg.outputs.len();
        self.counters.acquisitions += 1;
        self.counters.coverage.note_fanout(nout as u32);
        self.last_progress = now;
        let node = match input {
            SegInput::Source { .. } => self.msgs[msg.index()].spec.src,
            SegInput::Channel(ic) => self.topo.channel(ic).dst,
        };
        if self.trace.is_some() {
            let channels = crate::trace::ChannelList::from_slice(
                &self.segs.get(sid).expect("checked live").outputs,
            );
            self.emit(|| TraceEvent::Acquired {
                msg,
                node,
                channels,
                at: now,
            });
        }
        // Index-based re-borrows instead of cloning the output list: this
        // path must not allocate.
        for i in 0..nout {
            let o = self.seg_output(sid, i);
            // Carry the OCRQ integral at the pre-pop depth, then bill the
            // acquisition, before the queue shrinks.
            self.metrics_ocrq_carry(o, now);
            if let Some(m) = self.metrics.as_mut() {
                m.channels.acquired(o.index());
            }
            let c = &mut self.chans[o.index()];
            let popped = c.ocrq.pop_front();
            debug_assert_eq!(popped, Some((msg, sid)));
            c.owner = Some((msg, sid));
            c.out_buf.push_back(Flit {
                msg,
                kind: FlitKind::Header,
            });
        }
        for i in 0..nout {
            let o = self.seg_output(sid, i);
            self.try_start_wire(o);
        }
        // Consume the header on the input side.
        match input {
            SegInput::Source { .. } => {
                if let Some(seg) = self.segs.get_mut(sid) {
                    seg.input = SegInput::Source { next: 1 };
                }
            }
            SegInput::Channel(ic) => {
                let f = self.chans[ic.index()].in_buf.pop_front();
                debug_assert!(matches!(f, Some(f) if f.kind == FlitKind::Header));
                self.try_start_wire(ic);
            }
        }
        self.segs.get_mut(sid).expect("segment exists").acquired = true;
        self.try_replicate(now, sid);
    }

    /// Forwards as many flits as possible for an acquired segment. A flit
    /// is replicated only when *all* owned output buffers have space; when
    /// a present flit is blocked by a full sibling, the segment becomes a
    /// bubble candidate (asynchronous replication, §3.2; insertion happens
    /// at the end of the instant). Replicating the tail releases the
    /// channels.
    fn try_replicate(&mut self, now: Time, sid: SlotId) {
        loop {
            self.counters.seg_lookups += 1;
            let Some(seg) = self.segs.get(sid) else {
                return;
            };
            if !seg.acquired {
                return;
            }
            let msg = seg.msg;
            let input = seg.input;
            let nout = seg.outputs.len();
            let len = self.msgs[msg.index()].worm_len;
            let next_flit = match input {
                SegInput::Source { next } => {
                    debug_assert!(next < len, "tail emission releases the segment");
                    Some(Flit::nth(msg, next, len))
                }
                SegInput::Channel(ic) => match self.chans[ic.index()].in_buf.front() {
                    Some(f) => {
                        debug_assert_eq!(
                            f.msg, msg,
                            "foreign flit at input head while segment alive"
                        );
                        Some(*f)
                    }
                    None => None,
                },
            };
            let out_cap = self.cfg.output_buffer_flits;
            // This loop runs once per flit per router traversal — the
            // hottest path in the engine. Re-borrow the segment per step
            // instead of cloning its output list.
            let all_free = self
                .segs
                .get(sid)
                .expect("checked live")
                .outputs
                .iter()
                .all(|&o| self.chans[o.index()].out_has_space(out_cap));
            match next_flit {
                Some(f) if all_free => {
                    for i in 0..nout {
                        let o = self.seg_output(sid, i);
                        self.chans[o.index()].out_buf.push_back(f);
                        self.try_start_wire(o);
                    }
                    match input {
                        SegInput::Source { next } => {
                            if let Some(s) = self.segs.get_mut(sid) {
                                s.input = SegInput::Source { next: next + 1 };
                            }
                        }
                        SegInput::Channel(ic) => {
                            self.chans[ic.index()].in_buf.pop_front();
                            self.try_start_wire(ic);
                        }
                    }
                    if f.is_tail() {
                        self.release(now, sid);
                        return;
                    }
                }
                Some(_) => {
                    // Blocked by a sibling: mark for end-of-instant bubble
                    // insertion. A single-output segment simply stalls (no
                    // divergence to mask).
                    if nout > 1 && !self.bubble_candidates.contains(&sid) {
                        self.bubble_candidates.push(sid);
                    }
                    return;
                }
                None => return, // input starved; the worm holds its channels
            }
        }
    }

    /// End-of-instant bubble resolution: for every branch segment that was
    /// sibling-blocked during this instant and *still* is, inject one
    /// bubble flit into each free output buffer so that branch keeps
    /// advancing (asynchronous replication, §3.2). If the blockage cleared
    /// within the instant, ordinary replication runs instead. Stale
    /// candidates (segments since released or torn down) fail the
    /// generation check and are skipped.
    fn flush_bubbles(&mut self, now: Time) {
        while let Some(sid) = self.bubble_candidates.pop() {
            let Some(seg) = self.segs.get(sid) else {
                continue;
            };
            let msg = seg.msg;
            if !seg.acquired || seg.outputs.len() < 2 {
                continue;
            }
            let nout = seg.outputs.len();
            let input = seg.input;
            let input_present = match input {
                SegInput::Source { next } => next < self.msgs[msg.index()].worm_len,
                SegInput::Channel(ic) => self.chans[ic.index()]
                    .in_buf
                    .front()
                    .is_some_and(|f| f.msg == msg),
            };
            if !input_present {
                continue;
            }
            let out_cap = self.cfg.output_buffer_flits;
            let all_free = self
                .segs
                .get(sid)
                .expect("checked live")
                .outputs
                .iter()
                .all(|&o| self.chans[o.index()].out_has_space(out_cap));
            if all_free {
                // The sibling drained later in the same instant; the real
                // flit advances and no bubble is needed.
                self.try_replicate(now, sid);
                continue;
            }
            // Bubbles are generated only while a *real* flit is stuck in a
            // sibling buffer. A sibling full of bubbles is self-inflicted
            // back-pressure from this very replication unit; breeding more
            // bubbles against it would let two branches ping-pong bubbles
            // forever (each freeing at a different instant) and starve the
            // real flits — a livelock hardware avoids because its cycle-
            // synchronous buffers free together.
            let real_blockage = self
                .segs
                .get(sid)
                .expect("checked live")
                .outputs
                .iter()
                .any(|&o| {
                    let c = &self.chans[o.index()];
                    !c.out_has_space(out_cap) && c.out_buf.iter().any(|f| f.is_real())
                });
            if !real_blockage {
                continue;
            }
            let node = match input {
                SegInput::Source { .. } => self.msgs[msg.index()].spec.src,
                SegInput::Channel(ic) => self.topo.channel(ic).dst,
            };
            for i in 0..nout {
                let o = self.seg_output(sid, i);
                if self.chans[o.index()].out_has_space(out_cap) {
                    self.chans[o.index()].out_buf.push_back(Flit::bubble(msg));
                    self.counters.bubbles_created += 1;
                    self.emit(|| TraceEvent::Bubble {
                        msg,
                        node,
                        channel: o,
                        at: now,
                    });
                    self.try_start_wire(o);
                }
            }
        }
    }

    /// Tail replicated: release every owned channel to its next waiter and
    /// retire the segment. Removing the segment first hands us owned
    /// output/input state, so no copy of the channel list is needed.
    fn release(&mut self, now: Time, sid: SlotId) {
        let seg = self.segs.remove(sid).expect("released segment exists");
        let msg = seg.msg;
        let input = seg.input;
        // Unlink from the message's live list (order is irrelevant there).
        let live = &mut self.msgs[msg.index()].live_segs;
        let pos = live
            .iter()
            .position(|&s| s == sid)
            .expect("live list tracks live segments");
        live.swap_remove(pos);
        if let SegInput::Channel(ic) = input {
            debug_assert_eq!(self.chans[ic.index()].seg, Some(sid));
            self.chans[ic.index()].seg = None;
        }
        let node = match input {
            SegInput::Source { .. } => self.msgs[msg.index()].spec.src,
            SegInput::Channel(ic) => self.topo.channel(ic).dst,
        };
        if self.trace.is_some() {
            let channels = crate::trace::ChannelList::from_slice(&seg.outputs);
            self.emit(|| TraceEvent::Released {
                msg,
                node,
                channels,
                at: now,
            });
        }
        for &o in &seg.outputs {
            let c = &mut self.chans[o.index()];
            debug_assert_eq!(c.owner, Some((msg, sid)));
            c.owner = None;
            // The freed channel may already satisfy its next waiter (the
            // tail might still be draining; try_acquire re-checks).
            if let Some(&(_, waiter)) = self.chans[o.index()].ocrq.front() {
                self.counters.seg_lookups += 1;
                self.try_acquire(now, waiter);
            }
        }
        // With multi-flit input buffers the next message's header may
        // already sit behind our tail.
        if let SegInput::Channel(ic) = input {
            self.process_in_buf(now, ic);
        }
    }

    /// Drains the input buffer of `ch` as far as the protocol allows.
    fn process_in_buf(&mut self, now: Time, ch: ChannelId) {
        let dst = self.topo.channel(ch).dst;
        let deliver_here = self.topo.is_processor(dst);
        loop {
            let Some(&head) = self.chans[ch.index()].in_buf.front() else {
                return;
            };
            if deliver_here {
                self.chans[ch.index()].in_buf.pop_front();
                self.deliver(now, head, dst);
                self.try_start_wire(ch);
                continue;
            }
            let before = self.chans[ch.index()].in_buf.len();
            self.counters.seg_lookups += 1;
            let seg = self.chans[ch.index()].seg;
            match head.kind {
                FlitKind::Header => {
                    if let Some(sid) = seg {
                        debug_assert_eq!(
                            self.segs.get(sid).map(|s| s.msg),
                            Some(head.msg),
                            "transit segment belongs to the header at the buffer head"
                        );
                        self.try_acquire(now, sid);
                    } else if !self.chans[ch.index()].route_pending {
                        self.chans[ch.index()].route_pending = true;
                        self.sched.after(
                            self.cfg.latency.router_setup,
                            Event::RouteDecision {
                                msg: head.msg,
                                in_ch: ch,
                            },
                        );
                        return;
                    } else {
                        return;
                    }
                }
                _ => {
                    debug_assert!(
                        seg.and_then(|s| self.segs.get(s))
                            .is_some_and(|s| s.acquired),
                        "body flit without an acquired segment"
                    );
                    if let Some(sid) = seg {
                        self.try_replicate(now, sid);
                    }
                }
            }
            if self.chans[ch.index()].in_buf.len() == before {
                return; // no progress possible right now
            }
        }
    }

    /// Absorbs a flit at a destination processor, enforcing the in-order,
    /// exactly-once delivery invariants of wormhole routing.
    fn deliver(&mut self, now: Time, flit: Flit, proc: NodeId) {
        if !flit.is_real() {
            return; // bubbles are discarded silently at consumption channels
        }
        self.counters.flits_delivered += 1;
        self.last_progress = now;
        let ms = &mut self.msgs[flit.msg.index()];
        // Hash-free destination lookup: binary search of the sorted
        // (node, slot) list — this runs once per delivered flit.
        let Ok(pos) = ms.dest_slot.binary_search_by_key(&proc, |&(n, _)| n) else {
            // A flit for a processor that is not a destination: the
            // routing algorithm misrouted the worm (on degraded networks,
            // typically a stale labeling). Typed error, not a crash.
            return self.fail(SimError::Misroute {
                msg: flit.msg,
                at: proc,
            });
        };
        let di = ms.dest_slot[pos].1 as usize;
        let d = &mut ms.dests[di];
        let seq = flit.seq().expect("real flits carry a sequence number");
        assert_eq!(
            seq, d.next_seq,
            "out-of-order delivery of {} at {proc}",
            flit.msg
        );
        d.next_seq += 1;
        if flit.is_tail() {
            debug_assert_eq!(seq + 1, ms.worm_len, "tail carries the last sequence");
            d.done_at = Some(now);
            ms.remaining -= 1;
            let fully_done = ms.remaining == 0;
            if fully_done {
                ms.completed_at = Some(now);
                self.active -= 1;
                self.counters.messages_completed += 1;
                self.pending_completions.push(flit.msg);
            }
            self.emit(|| TraceEvent::DeliveredTail {
                msg: flit.msg,
                dest: proc,
                at: now,
            });
        }
    }
}

// Child module so the codec sees the engine's private state without
// widening any field's visibility; the file lives beside engine.rs.
#[path = "engine_snapshot.rs"]
mod snapshot;
pub use snapshot::CheckpointSink;
