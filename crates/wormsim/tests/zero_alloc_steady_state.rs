//! Steady-state allocation discipline: once a worm's segments are set up,
//! moving flits — replication, wire transfer, delivery — must not touch
//! the heap at all.
//!
//! Methodology: install a counting global allocator and run the *same*
//! scenario twice, varying only the message length. Every per-message and
//! per-segment cost (specs, segment setup, event-queue growth to its
//! steady capacity) is identical across the two runs; only the number of
//! body flits differs. If the per-flit path allocated anything, the longer
//! run would count more allocations — so the difference must be exactly
//! zero.
//!
//! This is a `harness = false` target: the libtest harness runs tests on
//! spawned threads and allocates on its own schedule, which used to force
//! a min-over-retries workaround. With the harness gone the process is
//! single-threaded and the allocator counter observes *only* the
//! simulation, so every pin below is an exact equality.

use desim::Duration;
use netgraph::{NodeId, Topology};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use wormsim::routing::OracleRouting;
use wormsim::{
    CheckpointSink, MessageSpec, MetricsConfig, NetworkSim, QueueKind, SimConfig, SimOutcome,
};

/// The zero-alloc discipline is a property of the bucket wheel's pooled
/// slot chains; the reference heap grows its backing storage on its own
/// schedule. Pin the wheel explicitly so a `WORMSIM_QUEUE=heap` test run
/// (the CI reference-queue job) still measures the intended path.
fn cfg() -> SimConfig {
    SimConfig::paper().with_queue(QueueKind::Bucket)
}

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

// SAFETY: pass-through to `System`; the counter is a side effect.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

/// A chain `p_src - s0 - ... - s{k-1} - p_dst` plus one extra processor on
/// the middle switch (so a branching plan can fork there).
fn chain(k: usize) -> (Topology, Vec<NodeId>, NodeId, NodeId, NodeId) {
    let mut b = Topology::builder();
    let switches: Vec<NodeId> = (0..k).map(|_| b.add_switch()).collect();
    let src = b.add_processor();
    let dst = b.add_processor();
    let side = b.add_processor();
    for w in switches.windows(2) {
        b.link(w[0], w[1]).unwrap();
    }
    b.link(src, switches[0]).unwrap();
    b.link(dst, switches[k - 1]).unwrap();
    b.link(side, switches[k / 2]).unwrap();
    (b.build(), switches, src, dst, side)
}

fn run_unicast(len: u32) -> (SimOutcome, u64) {
    run_unicast_cfg(len, false)
}

fn run_unicast_cfg(len: u32, traced: bool) -> (SimOutcome, u64) {
    let (topo, switches, src, dst, _) = chain(6);
    let mut oracle = OracleRouting::new(&topo);
    let mut path = vec![src];
    path.extend(&switches);
    path.push(dst);
    oracle.add_unicast_path(0, &path).unwrap();
    let mut sim = NetworkSim::new(&topo, oracle, cfg());
    if traced {
        sim.enable_trace();
    }
    sim.submit(MessageSpec::unicast(src, dst, len).tag(0))
        .unwrap();
    let before = ALLOCS.load(Ordering::Relaxed);
    let out = sim.run();
    let after = ALLOCS.load(Ordering::Relaxed);
    assert!(out.all_delivered(), "{:?} {:?}", out.error, out.deadlock);
    (out, after - before)
}

fn run_branching(len: u32) -> (SimOutcome, u64) {
    run_branching_cfg(len, false)
}

fn run_branching_cfg(len: u32, traced: bool) -> (SimOutcome, u64) {
    let (topo, switches, src, dst, side) = chain(6);
    let mid = switches[3];
    let mut oracle = OracleRouting::new(&topo);
    // src -> s0 .. s3, then fork: one head continues to dst, the other
    // drops to the side processor — a two-output replication unit, the
    // path that used to clone its channel list per flit.
    let mut edges = vec![
        (switches[0], switches[1]),
        (switches[1], switches[2]),
        (switches[2], mid),
    ];
    edges.push((mid, switches[4]));
    edges.push((mid, side));
    edges.push((switches[4], switches[5]));
    edges.push((switches[5], dst));
    oracle.add_tree_edges(1, edges).unwrap();
    let mut sim = NetworkSim::new(&topo, oracle, cfg());
    if traced {
        sim.enable_trace();
    }
    sim.submit(MessageSpec::multicast(src, vec![dst, side], len).tag(1))
        .unwrap();
    let before = ALLOCS.load(Ordering::Relaxed);
    let out = sim.run();
    let after = ALLOCS.load(Ordering::Relaxed);
    assert!(out.all_delivered(), "{:?} {:?}", out.error, out.deadlock);
    (out, after - before)
}

fn body_flits_allocate_nothing() {
    // Warm up (first run pays one-time lazy init in the runtime).
    let _ = run_unicast(16);
    // Both measured runs are long enough to fully warm the event wheel's
    // per-slot capacities (a few microseconds of simulated time); past
    // that point the runs differ only in body-flit count, so any nonzero
    // delta is a per-flit allocation.
    let (short_out, short_allocs) = run_unicast(4096);
    let (long_out, long_allocs) = run_unicast(12288);
    let extra_flits = long_out.counters.flits_delivered - short_out.counters.flits_delivered;
    assert!(
        extra_flits >= 8000,
        "long run moved {extra_flits} extra flits"
    );
    assert_eq!(
        long_allocs,
        short_allocs,
        "per-flit hot path allocated: {} extra allocations over {} extra flits",
        long_allocs as i64 - short_allocs as i64,
        extra_flits
    );
}

fn repeated_runs_have_identical_alloc_counts() {
    // The exactness the harness-free process buys: the same simulation
    // allocates the same number of times, every time — no tolerance.
    let _ = run_unicast(512);
    let (_, a) = run_unicast(512);
    let (_, b) = run_unicast(512);
    let (_, c) = run_unicast(512);
    assert_eq!(a, b, "alloc count drifted across identical runs");
    assert_eq!(b, c, "alloc count drifted across identical runs");
}

fn branch_replication_allocates_nothing_per_flit() {
    let _ = run_branching(16);
    let (short_out, short_allocs) = run_branching(4096);
    let (long_out, long_allocs) = run_branching(12288);
    let extra_flits = long_out.counters.flits_delivered - short_out.counters.flits_delivered;
    assert!(
        extra_flits >= 16000,
        "long run moved {extra_flits} extra flits"
    );
    assert_eq!(
        long_allocs,
        short_allocs,
        "branching hot path allocated: {} extra allocations over {} extra flits",
        long_allocs as i64 - short_allocs as i64,
        extra_flits
    );
}

fn disabled_tracing_allocates_nothing_per_flit() {
    // The tracing layer is always compiled in; its disabled path must be
    // as free as not having it. Same long/short differencing as the base
    // pin — any per-flit (or per-header-crossing) cost in the `emit`
    // guard would show up here as a nonzero delta.
    let _ = run_unicast_cfg(16, false);
    let (short_out, short_allocs) = run_unicast_cfg(4096, false);
    let (long_out, long_allocs) = run_unicast_cfg(12288, false);
    let extra = long_out.counters.flits_delivered - short_out.counters.flits_delivered;
    assert_eq!(
        long_allocs, short_allocs,
        "disabled tracing allocated over {extra} extra flits"
    );
}

fn enabled_tracing_allocates_nothing_per_flit() {
    // Enabled tracing records per protocol *action* (request, acquire,
    // header arrival, delivery, release) — never per body flit. Long and
    // short runs share the exact same action sequence, so the recorded
    // events (and the InlineVec channel lists inside them, which stay
    // inline up to 4-way fanout) must cost identical allocation counts.
    let _ = run_unicast_cfg(16, true);
    let (short_out, short_allocs) = run_unicast_cfg(4096, true);
    let (long_out, long_allocs) = run_unicast_cfg(12288, true);
    assert!(!long_out.trace.events.is_empty(), "tracing was on");
    let extra = long_out.counters.flits_delivered - short_out.counters.flits_delivered;
    assert_eq!(
        long_allocs, short_allocs,
        "enabled tracing allocated per flit: over {extra} extra flits"
    );

    // Same property through a replication fork: the branching emit sites
    // build 2-wide channel lists, which InlineVec keeps off the heap.
    let _ = run_branching_cfg(16, true);
    let (_, short_b) = run_branching_cfg(4096, true);
    let (_, long_b) = run_branching_cfg(12288, true);
    assert_eq!(
        long_b, short_b,
        "traced branch replication allocated per flit"
    );
}

/// A deliberately tiny ring: both measured runs record far more samples
/// than 64, so the series *wraps* in both — proving the ring recycles
/// slots instead of growing. Any reallocation would show up as a
/// long-vs-short delta.
fn metrics_cfg() -> MetricsConfig {
    MetricsConfig::every_ns(100).with_capacity(64)
}

fn run_unicast_metered(len: u32, metered: bool) -> (SimOutcome, u64) {
    let (topo, switches, src, dst, _) = chain(6);
    let mut oracle = OracleRouting::new(&topo);
    let mut path = vec![src];
    path.extend(&switches);
    path.push(dst);
    oracle.add_unicast_path(0, &path).unwrap();
    let mut sim = NetworkSim::new(&topo, oracle, cfg());
    if metered {
        sim.enable_metrics(metrics_cfg());
    }
    sim.submit(MessageSpec::unicast(src, dst, len).tag(0))
        .unwrap();
    let before = ALLOCS.load(Ordering::Relaxed);
    let out = sim.run();
    let after = ALLOCS.load(Ordering::Relaxed);
    assert!(out.all_delivered(), "{:?} {:?}", out.error, out.deadlock);
    (out, after - before)
}

fn run_branching_metered(len: u32) -> (SimOutcome, u64) {
    let (topo, switches, src, dst, side) = chain(6);
    let mid = switches[3];
    let mut oracle = OracleRouting::new(&topo);
    let mut edges = vec![
        (switches[0], switches[1]),
        (switches[1], switches[2]),
        (switches[2], mid),
    ];
    edges.push((mid, switches[4]));
    edges.push((mid, side));
    edges.push((switches[4], switches[5]));
    edges.push((switches[5], dst));
    oracle.add_tree_edges(1, edges).unwrap();
    let mut sim = NetworkSim::new(&topo, oracle, cfg());
    sim.enable_metrics(metrics_cfg());
    sim.submit(MessageSpec::multicast(src, vec![dst, side], len).tag(1))
        .unwrap();
    let before = ALLOCS.load(Ordering::Relaxed);
    let out = sim.run();
    let after = ALLOCS.load(Ordering::Relaxed);
    assert!(out.all_delivered(), "{:?} {:?}", out.error, out.deadlock);
    (out, after - before)
}

fn disabled_metrics_allocates_nothing_per_flit() {
    // The telemetry hooks are always compiled into the engine; with
    // metrics off, every one is an `Option` check that must cost nothing
    // — no allocation, per flit or otherwise.
    let _ = run_unicast_metered(16, false);
    let (short_out, short_allocs) = run_unicast_metered(4096, false);
    let (long_out, long_allocs) = run_unicast_metered(12288, false);
    let extra = long_out.counters.flits_delivered - short_out.counters.flits_delivered;
    assert!(long_out.metrics.is_none(), "metrics were off");
    assert_eq!(
        long_allocs, short_allocs,
        "disabled telemetry allocated over {extra} extra flits"
    );
}

fn enabled_metrics_allocates_nothing_per_flit() {
    // Enabled telemetry preallocates everything at `enable_metrics`:
    // the gauge ring (which *wraps*, never grows — the 64-slot ring is
    // far smaller than the hundreds of samples each run records) and one
    // accumulator per channel. The long run samples ~3x as often and
    // moves ~3x the flits through the wire-busy / acquisition /
    // OCRQ-integral hooks; if any of that touched the heap, the counts
    // would differ.
    let _ = run_unicast_metered(16, true);
    let (short_out, short_allocs) = run_unicast_metered(4096, true);
    let (long_out, long_allocs) = run_unicast_metered(12288, true);
    let m = long_out.metrics.as_ref().expect("telemetry was on");
    assert_eq!(
        m.series.len(),
        metrics_cfg().capacity,
        "the ring should have wrapped (long run records 100s of samples)"
    );
    assert!(m.channels.iter().any(|a| a.busy_ns > 0));
    let extra = long_out.counters.flits_delivered - short_out.counters.flits_delivered;
    assert_eq!(
        long_allocs, short_allocs,
        "enabled telemetry allocated per flit/sample: over {extra} extra flits"
    );

    // Same property through a replication fork: per-flit wire billing on
    // two outputs at once, multi-channel acquisitions, OCRQ integrals.
    let _ = run_branching_metered(16);
    let (_, short_b) = run_branching_metered(4096);
    let (_, long_b) = run_branching_metered(12288);
    assert_eq!(
        long_b, short_b,
        "metered branch replication allocated per flit"
    );
}

fn run_unicast_checkpointed(len: u32) -> (SimOutcome, u64, usize) {
    let (topo, switches, src, dst, _) = chain(6);
    let mut oracle = OracleRouting::new(&topo);
    let mut path = vec![src];
    path.extend(&switches);
    path.push(dst);
    oracle.add_unicast_path(0, &path).unwrap();
    let mut sim = NetworkSim::new(&topo, oracle, cfg());
    let (sink, ledger) = CheckpointSink::digests();
    sim.enable_checkpoints(Duration::from_ns(5_000), sink);
    sim.submit(MessageSpec::unicast(src, dst, len).tag(0))
        .unwrap();
    let before = ALLOCS.load(Ordering::Relaxed);
    let out = sim.run();
    let after = ALLOCS.load(Ordering::Relaxed);
    assert!(out.all_delivered(), "{:?} {:?}", out.error, out.deadlock);
    let checkpoints = ledger.lock().map(|v| v.len()).unwrap_or(0);
    (out, after - before, checkpoints)
}

fn enabled_checkpointing_allocates_nothing_per_flit() {
    // Digest checkpointing is built to be steady-state alloc-free: the
    // `SnapWriter` buffer is preallocated and reused for every encode,
    // and the `Digests` ledger preallocates its slots. The long run both
    // moves ~3x the flits *and* fires ~3x the checkpoints — so this pin
    // is stronger than the others: not just zero per flit, zero per
    // checkpoint too.
    let _ = run_unicast_checkpointed(16);
    let (short_out, short_allocs, short_ckpts) = run_unicast_checkpointed(4096);
    let (long_out, long_allocs, long_ckpts) = run_unicast_checkpointed(12288);
    assert!(
        short_ckpts >= 2,
        "short run checkpointed {short_ckpts} times"
    );
    assert!(
        long_ckpts > short_ckpts,
        "long run should checkpoint more ({long_ckpts} vs {short_ckpts})"
    );
    let extra = long_out.counters.flits_delivered - short_out.counters.flits_delivered;
    assert_eq!(
        long_allocs,
        short_allocs,
        "digest checkpointing allocated: {} extra allocations over {} extra flits and {} extra checkpoints",
        long_allocs as i64 - short_allocs as i64,
        extra,
        long_ckpts - short_ckpts
    );
}

fn seg_lookups_are_counted() {
    // The arena refactor's accounting hook: every event-path state lookup
    // (a hash probe before, an array index now) is counted.
    let (out, _) = run_unicast(128);
    assert!(
        out.counters.seg_lookups > out.counters.flits_delivered,
        "lookups ({}) should dominate delivered flits ({})",
        out.counters.seg_lookups,
        out.counters.flits_delivered
    );
    // Startup aside, sim time should be deterministic across runs.
    let (again, _) = run_unicast(128);
    assert_eq!(out.counters, again.counters);
}

fn main() {
    let checks: [(&str, fn()); 9] = [
        ("body_flits_allocate_nothing", body_flits_allocate_nothing),
        (
            "repeated_runs_have_identical_alloc_counts",
            repeated_runs_have_identical_alloc_counts,
        ),
        (
            "branch_replication_allocates_nothing_per_flit",
            branch_replication_allocates_nothing_per_flit,
        ),
        (
            "disabled_tracing_allocates_nothing_per_flit",
            disabled_tracing_allocates_nothing_per_flit,
        ),
        (
            "enabled_tracing_allocates_nothing_per_flit",
            enabled_tracing_allocates_nothing_per_flit,
        ),
        (
            "disabled_metrics_allocates_nothing_per_flit",
            disabled_metrics_allocates_nothing_per_flit,
        ),
        (
            "enabled_metrics_allocates_nothing_per_flit",
            enabled_metrics_allocates_nothing_per_flit,
        ),
        (
            "enabled_checkpointing_allocates_nothing_per_flit",
            enabled_checkpointing_allocates_nothing_per_flit,
        ),
        ("seg_lookups_are_counted", seg_lookups_are_counted),
    ];
    for (name, check) in checks {
        check();
        println!("zero_alloc_steady_state::{name} ... ok");
    }
}
