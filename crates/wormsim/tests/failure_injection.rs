//! Failure injection: the engine must fail *loudly and precisely* when a
//! routing algorithm violates its contract, when resource limits trip, or
//! when callers misuse the API — silent misbehaviour in a simulator
//! produces wrong science. Contract violations and misroutes surface as
//! typed [`SimError`]s on the outcome (diagnosable, e.g. on degraded
//! networks with stale labelings); only host-side API misuse panics.

use desim::{Duration, Time};
use netgraph::{ChannelId, NodeId, Topology};
use wormsim::routing::OracleRouting;
use wormsim::{
    MessageSpec, NetworkSim, RouteDecision, RouteError, RoutingAlgorithm, SimConfig, SimError,
    SpecError,
};

fn line2() -> (Topology, [NodeId; 4]) {
    let mut b = Topology::builder();
    let s0 = b.add_switch();
    let s1 = b.add_switch();
    let p0 = b.add_processor();
    let p1 = b.add_processor();
    b.link(s0, s1).unwrap();
    b.link(p0, s0).unwrap();
    b.link(p1, s1).unwrap();
    (b.build(), [s0, s1, p0, p1])
}

/// A router that returns whatever channel list it is configured with.
struct EvilRouter {
    topo: Topology,
    mode: EvilMode,
}

#[derive(Clone, Copy)]
enum EvilMode {
    Empty,
    Duplicate,
    ForeignChannel,
}

impl RoutingAlgorithm for EvilRouter {
    type Header = ();
    type Scratch = ();

    fn initial_header(&self, _spec: &MessageSpec) -> Result<Self::Header, RouteError> {
        Ok(())
    }

    fn route(
        &self,
        node: NodeId,
        _in_ch: ChannelId,
        _header: &(),
        _spec: &MessageSpec,
        _scratch: &mut (),
        out: &mut RouteDecision<()>,
    ) -> Result<(), RouteError> {
        match self.mode {
            EvilMode::Empty => {}
            EvilMode::Duplicate => {
                let c = self.topo.out_channels(node)[0];
                out.push(c, ());
                out.push(c, ());
            }
            EvilMode::ForeignChannel => {
                // A channel that does not leave `node`.
                let foreign = self
                    .topo
                    .channel_ids()
                    .find(|&c| self.topo.channel(c).src != node)
                    .unwrap();
                out.push(foreign, ());
            }
        }
        Ok(())
    }
}

fn run_evil(mode: EvilMode) -> SimError {
    let (topo, [_, _, p0, p1]) = line2();
    let mut sim = NetworkSim::new(
        &topo,
        EvilRouter {
            topo: topo.clone(),
            mode,
        },
        SimConfig::paper(),
    );
    sim.submit(MessageSpec::unicast(p0, p1, 8)).unwrap();
    let out = sim.run();
    assert!(
        !out.all_delivered(),
        "contract violation must abort the run"
    );
    out.error.expect("typed error must be reported")
}

#[test]
fn empty_route_decision_is_a_typed_error() {
    assert!(matches!(
        run_evil(EvilMode::Empty),
        SimError::EmptyDecision { .. }
    ));
}

#[test]
fn duplicate_channel_request_is_a_typed_error() {
    assert!(matches!(
        run_evil(EvilMode::Duplicate),
        SimError::DuplicateRequest { .. }
    ));
}

#[test]
fn foreign_channel_request_is_a_typed_error() {
    assert!(matches!(
        run_evil(EvilMode::ForeignChannel),
        SimError::ForeignChannel { .. }
    ));
}

#[test]
fn routing_error_surfaces_on_the_outcome() {
    // An oracle with no plan at the first switch: the typed RouteError is
    // wrapped in SimError::Route, with the failing node identified.
    let (topo, [s0, _, p0, p1]) = line2();
    let oracle = OracleRouting::new(&topo);
    let mut sim = NetworkSim::new(&topo, oracle, SimConfig::paper());
    sim.submit(MessageSpec::unicast(p0, p1, 8).tag(5)).unwrap();
    let out = sim.run();
    assert!(!out.all_delivered());
    assert!(
        matches!(
            out.error,
            Some(SimError::Route {
                node,
                error: RouteError::NoPlan { tag: 5, node: plan_node },
                ..
            }) if node == s0 && plan_node == s0
        ),
        "unexpected error: {:?}",
        out.error
    );
}

#[test]
fn misroute_is_a_typed_error() {
    // Script a path that delivers to the *wrong* processor: p0 -> s0 ->
    // s1 -> p1, but the message's destination is a third processor p2 on
    // s0. The first flit absorbed at p1 must abort with Misroute.
    let mut b = Topology::builder();
    let s0 = b.add_switch();
    let s1 = b.add_switch();
    let p0 = b.add_processor();
    let p1 = b.add_processor();
    let p2 = b.add_processor();
    b.link(s0, s1).unwrap();
    b.link(p0, s0).unwrap();
    b.link(p1, s1).unwrap();
    b.link(p2, s0).unwrap();
    let topo = b.build();
    let mut oracle = OracleRouting::new(&topo);
    oracle.add_unicast_path(0, &[p0, s0, s1, p1]).unwrap();
    let mut sim = NetworkSim::new(&topo, oracle, SimConfig::paper());
    sim.submit(MessageSpec::unicast(p0, p2, 8)).unwrap();
    let out = sim.run();
    assert!(!out.all_delivered());
    assert!(
        matches!(out.error, Some(SimError::Misroute { at, .. }) if at == p1),
        "expected a misroute at {p1}, got {:?}",
        out.error
    );
}

#[test]
fn stale_hook_spec_aborts_with_typed_error() {
    // A completion hook that submits a message generated in the past must
    // abort the run with a typed `SimError::HookSpec`, never panic.
    let (topo, [_, _, p0, p1]) = line2();
    let mut oracle = OracleRouting::new(&topo);
    oracle
        .add_unicast_path(0, &[p0, NodeId(0), NodeId(1), p1])
        .unwrap();
    let mut sim = NetworkSim::new(&topo, oracle, SimConfig::paper());
    sim.submit(MessageSpec::unicast(p0, p1, 8)).unwrap();
    struct StaleHook(NodeId, NodeId);
    impl wormsim::CompletionHook for StaleHook {
        fn on_complete(
            &mut self,
            _m: wormsim::MsgId,
            _spec: &MessageSpec,
            _at: Time,
        ) -> Vec<MessageSpec> {
            vec![MessageSpec::unicast(self.0, self.1, 8).at(Time::ZERO)]
        }
    }
    let out = sim.run_with_hook(&mut StaleHook(p0, p1));
    assert!(
        matches!(out.error, Some(SimError::HookSpec { .. })),
        "expected a HookSpec abort, got {:?}",
        out.error
    );
}

#[test]
fn event_cap_aborts_runaway_runs() {
    let (topo, [s0, s1, p0, p1]) = line2();
    let mut oracle = OracleRouting::new(&topo);
    oracle.add_unicast_path(0, &[p0, s0, s1, p1]).unwrap();
    let cfg = SimConfig {
        max_events: 10, // far too few to deliver anything
        ..SimConfig::paper()
    };
    let mut sim = NetworkSim::new(&topo, oracle, cfg);
    sim.submit(MessageSpec::unicast(p0, p1, 128)).unwrap();
    let out = sim.run();
    assert!(!out.all_delivered());
    let dl = out.deadlock.expect("event cap must be reported");
    assert!(!dl.queue_exhausted);
    assert!(out.counters.events <= 10);
}

#[test]
fn zero_watchdog_flags_any_stall() {
    // A pathological watchdog of 0 ns: the very first gap between progress
    // instants aborts the run. Checks the watchdog path itself.
    let (topo, [s0, s1, p0, p1]) = line2();
    let mut oracle = OracleRouting::new(&topo);
    oracle.add_unicast_path(0, &[p0, s0, s1, p1]).unwrap();
    let cfg = SimConfig::paper().with_watchdog(Duration::ZERO);
    let mut sim = NetworkSim::new(&topo, oracle, cfg);
    sim.submit(MessageSpec::unicast(p0, p1, 128)).unwrap();
    let out = sim.run();
    // The run may still complete if every event makes progress, but any
    // setup wait (40 ns with no flit motion) trips the watchdog; with the
    // paper's latencies the router setup always creates such a gap.
    assert!(out.deadlock.is_some());
}

#[test]
fn submit_rejects_invalid_specs_without_state_damage() {
    let (topo, [s0, s1, p0, p1]) = line2();
    let mut oracle = OracleRouting::new(&topo);
    oracle.add_unicast_path(0, &[p0, s0, s1, p1]).unwrap();
    let mut sim = NetworkSim::new(&topo, oracle, SimConfig::paper());
    assert_eq!(
        sim.submit(MessageSpec::unicast(p0, p0, 8)),
        Err(SpecError::SelfDestination(p0))
    );
    assert_eq!(
        sim.submit(MessageSpec::unicast(s0, p1, 8)),
        Err(SpecError::SourceNotProcessor(s0))
    );
    // A valid message still goes through untouched by the failed submits.
    sim.submit(MessageSpec::unicast(p0, p1, 8)).unwrap();
    let out = sim.run();
    assert!(out.all_delivered());
    assert_eq!(out.messages.len(), 1);
}
