//! Engine-level checkpoint/resume tests: checkpointing is a pure
//! observer, a resumed run finishes byte-identically to an
//! uninterrupted one from *every* checkpoint, digest ledgers align
//! after the resume point, and corrupt or mismatched snapshots fail
//! with typed errors instead of panics.

use desim::{Duration, QueueKind, Time};
use netgraph::{NodeId, Topology};
use wormsim::routing::OracleRouting;
use wormsim::{
    CheckpointSink, MessageSpec, MetricsConfig, NetworkSim, SimConfig, SimOutcome, SnapshotError,
};

/// s0 - s1 - s2 chain with processors p0,p1 @ s0, p2 @ s1, p3 @ s2.
/// Three overlapping messages (one branching multicast, two unicasts,
/// one against the grain) keep worms, OCRQ entries, and in-flight flits
/// live across checkpoint instants.
fn build_topo() -> (Topology, [NodeId; 7]) {
    let mut b = Topology::builder();
    let s0 = b.add_switch();
    let s1 = b.add_switch();
    let s2 = b.add_switch();
    let p0 = b.add_processor();
    let p1 = b.add_processor();
    let p2 = b.add_processor();
    let p3 = b.add_processor();
    b.link(s0, s1).unwrap();
    b.link(s1, s2).unwrap();
    b.link(p0, s0).unwrap();
    b.link(p1, s0).unwrap();
    b.link(p2, s1).unwrap();
    b.link(p3, s2).unwrap();
    (b.build(), [s0, s1, s2, p0, p1, p2, p3])
}

fn build_oracle(topo: &Topology, n: &[NodeId; 7]) -> OracleRouting {
    let [s0, s1, s2, p0, p1, p3, ..] = *n;
    let p3n = n[6];
    let mut o = OracleRouting::new(topo);
    // tag 0: multicast p0 -> {p2, p3}, branching at s1.
    o.add_tree_edges(0, [(s0, s1), (s1, n[5]), (s1, s2), (s2, p3n)])
        .unwrap();
    // tag 1: unicast p1 -> p3, contending for s0->s1->s2.
    o.add_unicast_path(1, &[p1, s0, s1, s2, p3n]).unwrap();
    // tag 2: unicast p3 -> p0, against the grain.
    o.add_unicast_path(2, &[p3n, s2, s1, s0, p0]).unwrap();
    let _ = (p3, p0);
    o
}

fn submit_workload(sim: &mut NetworkSim<OracleRouting>, n: &[NodeId; 7]) {
    let [_, _, _, p0, p1, _, p3] = *n;
    let p2 = n[5];
    sim.submit(
        MessageSpec::multicast(p0, vec![p2, p3], 96)
            .tag(0)
            .at(Time::ZERO),
    )
    .unwrap();
    sim.submit(
        MessageSpec::unicast(p1, p3, 64)
            .tag(1)
            .at(Time::from_ns(2_000)),
    )
    .unwrap();
    sim.submit(
        MessageSpec::unicast(p3, p0, 48)
            .tag(2)
            .at(Time::from_ns(5_000)),
    )
    .unwrap();
}

fn fresh_sim<'a>(
    topo: &'a Topology,
    n: &[NodeId; 7],
    cfg: SimConfig,
) -> NetworkSim<'a, OracleRouting> {
    let mut sim = NetworkSim::new(topo, build_oracle(topo, n), cfg);
    sim.enable_trace();
    sim.enable_metrics(MetricsConfig {
        sample_every: Duration::from_ns(700),
        capacity: 64,
    });
    submit_workload(&mut sim, n);
    sim
}

/// Full-outcome equality. `ignore_queue_shape` relaxes the one field
/// that legitimately depends on the event-queue implementation: the
/// gauge samples' queue-occupancy histogram (wheel levels/overflow) —
/// everything the digest pins (events, latencies, counters, trace)
/// must still match exactly across queue kinds.
fn assert_same_outcome(a: &SimOutcome, b: &SimOutcome, ignore_queue_shape: bool) {
    assert_eq!(a.end_time, b.end_time);
    assert_eq!(a.quiescent, b.quiescent);
    assert_eq!(a.deadlock, b.deadlock);
    assert_eq!(a.error, b.error);
    assert_eq!(a.counters, b.counters);
    assert_eq!(a.channel_crossings, b.channel_crossings);
    assert_eq!(a.fault_times, b.fault_times);
    assert_eq!(a.trace.events, b.trace.events);
    assert_eq!(a.messages.len(), b.messages.len());
    for (x, y) in a.messages.iter().zip(&b.messages) {
        assert_eq!(x.spec, y.spec);
        assert_eq!(x.completed_at, y.completed_at);
        assert_eq!(x.dest_done_at, y.dest_done_at);
        assert_eq!(x.failure, y.failure);
    }
    let (ma, mb) = (a.metrics.as_ref().unwrap(), b.metrics.as_ref().unwrap());
    assert_eq!(ma.sample_every_ns, mb.sample_every_ns);
    assert_eq!(ma.channels, mb.channels);
    if ignore_queue_shape {
        let strip = |m: &wormsim::RunMetrics| -> Vec<spam_metrics::GaugeSample> {
            m.series
                .iter()
                .map(|g| {
                    let mut g = *g;
                    g.queue.levels = [0; desim::WHEEL_LEVELS];
                    g.queue.overflow = 0;
                    g
                })
                .collect()
        };
        assert_eq!(strip(ma), strip(mb));
    } else {
        assert_eq!(ma.series, mb.series);
    }
}

#[test]
fn checkpointing_is_a_pure_observer() {
    let (topo, n) = build_topo();
    let baseline = fresh_sim(&topo, &n, SimConfig::paper()).run();
    assert!(baseline.all_delivered(), "workload must deliver cleanly");

    let cfg = SimConfig::paper().with_checkpoint_every_ns(500);
    let mut sim = fresh_sim(&topo, &n, cfg);
    let (sink, digests) = CheckpointSink::digests();
    sim.set_checkpoint_sink(sink);
    let out = sim.run();
    assert_same_outcome(&baseline, &out, false);
    let digests = digests.lock().unwrap();
    // Ticks landing between two events collapse into one encode (state
    // is constant there), so the count is bounded by event density, not
    // wall cadence — but several distinct instants must still appear.
    assert!(
        digests.len() >= 5,
        "a 500ns cadence over a >10us run must checkpoint repeatedly, got {}",
        digests.len()
    );
    // Ledger times are strictly increasing multiples of the cadence.
    for w in digests.windows(2) {
        assert!(w[0].0 < w[1].0);
    }
}

#[test]
fn resume_from_every_checkpoint_matches_uninterrupted_run() {
    let (topo, n) = build_topo();
    let base_cfg = SimConfig::paper().with_queue(QueueKind::Bucket);
    let baseline = fresh_sim(&topo, &n, base_cfg).run();

    let mut sim = fresh_sim(&topo, &n, base_cfg);
    let (sink, kept) = CheckpointSink::keep_all();
    sim.enable_checkpoints(Duration::from_ns(1_000), sink);
    assert_same_outcome(&baseline, &sim.run(), false);

    let kept = kept.lock().unwrap();
    assert!(
        kept.len() >= 3,
        "expected several checkpoints, got {}",
        kept.len()
    );
    for (at_ns, bytes) in kept.iter() {
        // Resume under both queue kinds: pop order is pinned by
        // (time, seq) keys, so the queue implementation is free.
        for kind in [QueueKind::Bucket, QueueKind::Heap] {
            let cfg = SimConfig::paper().with_queue(kind);
            let sim = NetworkSim::restore(&topo, build_oracle(&topo, &n), cfg, bytes)
                .unwrap_or_else(|e| panic!("restore at {at_ns}ns failed: {e}"));
            assert_same_outcome(&baseline, &sim.run(), kind != QueueKind::Bucket);
        }
    }
}

#[test]
fn digest_ledgers_align_after_resume() {
    let (topo, n) = build_topo();
    let mut sim = fresh_sim(&topo, &n, SimConfig::paper());
    let (sink, kept) = CheckpointSink::keep_all();
    sim.enable_checkpoints(Duration::from_ns(1_000), sink);
    sim.run();
    let kept = kept.lock().unwrap();
    let full_ledger: Vec<(u64, u64)> = kept
        .iter()
        .map(|(at, bytes)| (*at, spam_snapshot::fnv1a(bytes)))
        .collect();

    // Resume from a middle checkpoint; its own ledger must equal the
    // original's suffix strictly after the resume instant.
    let (mid_at, mid_bytes) = &kept[kept.len() / 2];
    let mut resumed = NetworkSim::restore(
        &topo,
        build_oracle(&topo, &n),
        SimConfig::paper(),
        mid_bytes,
    )
    .unwrap();
    let (sink, digests) = CheckpointSink::digests();
    resumed.set_checkpoint_sink(sink);
    resumed.run();
    let suffix: Vec<(u64, u64)> = full_ledger
        .iter()
        .copied()
        .filter(|(at, _)| at > mid_at)
        .collect();
    assert!(!suffix.is_empty());
    assert_eq!(*digests.lock().unwrap(), suffix);
}

#[test]
fn corrupt_snapshots_fail_typed_never_panic() {
    let (topo, n) = build_topo();
    let mut sim = fresh_sim(&topo, &n, SimConfig::paper());
    let (sink, kept) = CheckpointSink::keep_all();
    sim.enable_checkpoints(Duration::from_ns(2_000), sink);
    sim.run();
    let kept = kept.lock().unwrap();
    let bytes = kept[kept.len() / 2].1.clone();

    // Every truncation length fails typed.
    for len in 0..bytes.len().min(64) {
        assert!(
            NetworkSim::restore(
                &topo,
                build_oracle(&topo, &n),
                SimConfig::paper(),
                &bytes[..len]
            )
            .is_err(),
            "truncated snapshot (len {len}) must not restore"
        );
    }
    assert!(NetworkSim::restore(
        &topo,
        build_oracle(&topo, &n),
        SimConfig::paper(),
        &bytes[..bytes.len() - 3],
    )
    .is_err());

    // Single-bit flips across the whole snapshot fail typed (the
    // checksum trailer catches payload flips; flips in the trailer
    // itself surface as ChecksumMismatch).
    for i in (0..bytes.len()).step_by(7) {
        let mut flipped = bytes.clone();
        flipped[i] ^= 1 << (i % 8);
        assert!(
            NetworkSim::restore(&topo, build_oracle(&topo, &n), SimConfig::paper(), &flipped)
                .is_err(),
            "bit flip at byte {i} must not restore"
        );
    }
}

#[test]
fn restore_rejects_mismatched_config_and_topology() {
    let (topo, n) = build_topo();
    let mut sim = fresh_sim(&topo, &n, SimConfig::paper());
    let (sink, kept) = CheckpointSink::keep_all();
    sim.enable_checkpoints(Duration::from_ns(2_000), sink);
    sim.run();
    let kept = kept.lock().unwrap();
    let bytes = &kept[0].1;

    let skewed = SimConfig {
        input_buffer_flits: 2,
        ..SimConfig::paper()
    };
    assert!(matches!(
        NetworkSim::restore(&topo, build_oracle(&topo, &n), skewed, bytes),
        Err(SnapshotError::ConfigMismatch(_))
    ));

    let (other_topo, on) = {
        let mut b = Topology::builder();
        let s0 = b.add_switch();
        let p0 = b.add_processor();
        let p1 = b.add_processor();
        b.link(p0, s0).unwrap();
        b.link(p1, s0).unwrap();
        (b.build(), [s0, s0, s0, p0, p0, p0, p1])
    };
    let _ = on;
    assert!(matches!(
        NetworkSim::restore(
            &other_topo,
            OracleRouting::new(&other_topo),
            SimConfig::paper(),
            bytes
        ),
        Err(SnapshotError::ConfigMismatch(_))
    ));
}

#[test]
fn config_cadence_auto_enables_checkpointing() {
    // `SimConfig::checkpoint_every_ns` alone turns checkpointing on (the
    // scenario axis path); the default sink is a digest ledger, reachable
    // by swapping in one we hold.
    let (topo, n) = build_topo();
    let cfg = SimConfig::paper().with_checkpoint_every_ns(1_000);
    let mut sim = fresh_sim(&topo, &n, cfg);
    let (sink, digests) = CheckpointSink::digests();
    sim.set_checkpoint_sink(sink);
    sim.run();
    assert!(!digests.lock().unwrap().is_empty());
}
