//! End-to-end behavioural tests of the wormhole engine driven by scripted
//! (oracle) routing plans: latency arithmetic, multi-head replication,
//! bubble flits, OCRQ serialization, deadlock detection (both flavours),
//! completion hooks, and determinism.

use desim::{Duration, Time};
use netgraph::{NodeId, Topology};
use wormsim::routing::OracleRouting;
use wormsim::{CompletionHook, MessageSpec, MsgId, NetworkSim, SimConfig};

/// p_src - s0 - s1 - p_dst chain plus helpers.
struct Chain {
    topo: Topology,
    s: Vec<NodeId>,
    p: Vec<NodeId>,
}

/// `n` switches in a line, one processor each.
fn chain(n: usize) -> Chain {
    let mut b = Topology::builder();
    let s = b.add_switches(n);
    for w in s.windows(2) {
        b.link(w[0], w[1]).unwrap();
    }
    let p: Vec<NodeId> = s
        .iter()
        .map(|&sw| {
            let p = b.add_processor();
            b.link(p, sw).unwrap();
            p
        })
        .collect();
    Chain {
        topo: b.build(),
        s,
        p,
    }
}

/// Expected uncontended unicast latency for the paper's parameters:
/// startup + channels·t_c + switches·t_r + (len-1)·t_c pipeline drain.
fn expected_unicast_ns(channels: u64, switches: u64, len: u64) -> u64 {
    10_000 + channels * 10 + switches * 40 + (len - 1) * 10
}

#[test]
fn unicast_latency_matches_cost_model() {
    for hops in [2usize, 3, 4, 7] {
        let c = chain(hops);
        let mut oracle = OracleRouting::new(&c.topo);
        let mut path = vec![c.p[0]];
        path.extend(&c.s);
        path.push(c.p[hops - 1]);
        oracle.add_unicast_path(0, &path).unwrap();
        let mut sim = NetworkSim::new(&c.topo, oracle, SimConfig::paper());
        sim.submit(MessageSpec::unicast(c.p[0], c.p[hops - 1], 128))
            .unwrap();
        let out = sim.run();
        assert!(out.all_delivered(), "hops={hops}");
        let lat = out.messages[0].latency().unwrap().as_ns();
        // channels = (hops-1) switch links + 2 processor links.
        let expect = expected_unicast_ns(hops as u64 + 1, hops as u64, 128);
        assert_eq!(lat, expect, "hops={hops}");
    }
}

#[test]
fn short_message_latency() {
    let c = chain(2);
    let mut oracle = OracleRouting::new(&c.topo);
    oracle
        .add_unicast_path(0, &[c.p[0], c.s[0], c.s[1], c.p[1]])
        .unwrap();
    let mut sim = NetworkSim::new(&c.topo, oracle, SimConfig::paper());
    sim.submit(MessageSpec::unicast(c.p[0], c.p[1], 2)).unwrap();
    let out = sim.run();
    assert_eq!(
        out.messages[0].latency().unwrap().as_ns(),
        expected_unicast_ns(3, 2, 2)
    );
}

/// Star: hub switch s0 with `k` leaf switches, one processor per switch.
fn star(k: usize) -> Chain {
    let mut b = Topology::builder();
    let hub = b.add_switch();
    let mut s = vec![hub];
    for _ in 0..k {
        let leaf = b.add_switch();
        b.link(hub, leaf).unwrap();
        s.push(leaf);
    }
    let p: Vec<NodeId> = s
        .iter()
        .map(|&sw| {
            let p = b.add_processor();
            b.link(p, sw).unwrap();
            p
        })
        .collect();
    Chain {
        topo: b.build(),
        s,
        p,
    }
}

#[test]
fn balanced_multicast_is_destination_count_independent() {
    // The Figure 2 headline behaviour in miniature: with no contention the
    // multi-head worm reaches 1, 2, or 4 equidistant destinations in the
    // same time.
    let mut latencies = Vec::new();
    for k in [1usize, 2, 4] {
        let net = star(4);
        let mut oracle = OracleRouting::new(&net.topo);
        let dests: Vec<NodeId> = (1..=k).map(|i| net.p[i]).collect();
        // Split at the hub towards each leaf switch, then deliver.
        oracle
            .add_tree_edges(0, (1..=k).map(|i| (net.s[0], net.s[i])))
            .unwrap();
        oracle
            .add_tree_edges(0, (1..=k).map(|i| (net.s[i], net.p[i])))
            .unwrap();
        let mut sim = NetworkSim::new(&net.topo, oracle, SimConfig::paper());
        sim.submit(MessageSpec::multicast(net.p[0], dests, 128))
            .unwrap();
        let out = sim.run();
        assert!(out.all_delivered());
        assert_eq!(out.counters.bubbles_created, 0, "no divergence, no bubbles");
        latencies.push(out.messages[0].latency().unwrap().as_ns());
    }
    assert_eq!(latencies[0], latencies[1]);
    assert_eq!(latencies[1], latencies[2]);
    assert_eq!(latencies[0], expected_unicast_ns(3, 2, 128));
}

#[test]
fn blocked_branch_generates_bubbles_and_all_deliver() {
    // The blockage must sit strictly *below* the branch point (a channel
    // the branch router does not request itself), otherwise the
    // all-or-nothing OCRQ acquisition simply serializes the worms. A side
    // link s3—s1 lets an interferer occupy s1->p1 without touching the
    // multicast's branch channels at the hub.
    let net = star(3);
    let mut b = Topology::builder();
    let s: Vec<NodeId> = (0..4).map(|_| b.add_switch()).collect();
    b.link(s[0], s[1]).unwrap();
    b.link(s[0], s[2]).unwrap();
    b.link(s[0], s[3]).unwrap();
    b.link(s[3], s[1]).unwrap(); // side path for the interferer
    let p: Vec<NodeId> = s
        .iter()
        .map(|&sw| {
            let pp = b.add_processor();
            b.link(pp, sw).unwrap();
            pp
        })
        .collect();
    let topo = b.build();
    drop(net);

    let mut oracle = OracleRouting::new(&topo);
    // Interferer (tag 1): p3 -> s3 -> s1 -> p1, grabbing s1->p1 first.
    oracle
        .add_unicast_path(1, &[p[3], s[3], s[1], p[1]])
        .unwrap();
    // Multicast (tag 0) from p0 at the hub to p1 and p2: splits at s0.
    oracle
        .add_tree_edges(0, [(s[0], s[1]), (s[0], s[2])])
        .unwrap();
    oracle
        .add_tree_edges(0, [(s[1], p[1]), (s[2], p[2])])
        .unwrap();

    let mut sim = NetworkSim::new(&topo, oracle, SimConfig::paper());
    sim.submit(MessageSpec::unicast(p[3], p[1], 512).tag(1).at(Time::ZERO))
        .unwrap();
    // Head start: the interferer owns s1->p1 when the multicast's branch
    // header arrives at s1.
    sim.submit(
        MessageSpec::multicast(p[0], vec![p[1], p[2]], 128)
            .tag(0)
            .at(Time::from_us(1)),
    )
    .unwrap();
    let out = sim.run();
    assert!(out.all_delivered());
    let (net_p1, net_p2) = (p[1], p[2]);
    assert!(
        out.counters.bubbles_created > 0,
        "the free branch must have advanced on bubbles: {:?}",
        out.counters
    );
    // Asynchronous replication lets the free branch's *head* advance (on
    // bubbles), but real flits replicate from one input buffer to all
    // output buffers, so the tail reaches the fast destination no earlier
    // than the slow sibling permits — exactly the paper's §3.2 example.
    let mc = &out.messages[1];
    let t1 = mc.latency_to(net_p1).unwrap();
    let t2 = mc.latency_to(net_p2).unwrap();
    assert!(t1 >= t2, "blocked branch cannot finish before the free one");
    // Both are delayed well past the uncontended multicast latency by the
    // interferer holding s1->p1.
    let uncontended = Duration::from_ns(expected_unicast_ns(3, 2, 128));
    assert!(t2 > uncontended, "contention must show up in the latency");
}

#[test]
fn ocrq_serializes_same_channel_messages_fifo() {
    let c = chain(2);
    let mut oracle = OracleRouting::new(&c.topo);
    for tag in 0..3 {
        oracle
            .add_unicast_path(tag, &[c.p[0], c.s[0], c.s[1], c.p[1]])
            .unwrap();
    }
    let mut sim = NetworkSim::new(&c.topo, oracle, SimConfig::paper());
    for tag in 0..3u64 {
        sim.submit(
            MessageSpec::unicast(c.p[0], c.p[1], 128)
                .tag(tag)
                .at(Time::ZERO),
        )
        .unwrap();
    }
    let out = sim.run();
    assert!(out.all_delivered());
    let done: Vec<u64> = {
        let mut v: Vec<(Time, u64)> = out
            .messages
            .iter()
            .map(|m| (m.completed_at.unwrap(), m.spec.tag))
            .collect();
        v.sort();
        v.iter().map(|(_, t)| *t).collect()
    };
    assert_eq!(done, vec![0, 1, 2], "injection order preserved by the OCRQ");
    // Back-to-back worms pipeline: each occupies the path for ~len flits.
    let first = out.messages[0].latency().unwrap().as_ns();
    let last = out.messages[2].latency().unwrap().as_ns();
    assert!(last > first, "queued messages wait for channel release");
}

/// Ring of 3 switches used for the deadlock controls.
fn ring3() -> Chain {
    let mut b = Topology::builder();
    let s = b.add_switches(3);
    b.link(s[0], s[1]).unwrap();
    b.link(s[1], s[2]).unwrap();
    b.link(s[2], s[0]).unwrap();
    let p: Vec<NodeId> = s
        .iter()
        .map(|&sw| {
            let p = b.add_processor();
            b.link(p, sw).unwrap();
            p
        })
        .collect();
    Chain {
        topo: b.build(),
        s,
        p,
    }
}

#[test]
fn cyclic_routing_deadlocks_and_is_detected_by_queue_exhaustion() {
    // Positive control: three worms chase each other around a ring, each
    // holding channel (i, i+1) and requesting (i+1, i+2). No branching, so
    // no bubble traffic — the event queue simply dries up.
    let net = ring3();
    let mut oracle = OracleRouting::new(&net.topo);
    for i in 0..3usize {
        let a = net.s[i];
        let b = net.s[(i + 1) % 3];
        let c2 = net.s[(i + 2) % 3];
        oracle
            .add_unicast_path(i as u64, &[net.p[i], a, b, c2, net.p[(i + 2) % 3]])
            .unwrap();
    }
    let mut sim = NetworkSim::new(&net.topo, oracle, SimConfig::paper());
    for i in 0..3usize {
        sim.submit(
            MessageSpec::unicast(net.p[i], net.p[(i + 2) % 3], 512)
                .tag(i as u64)
                .at(Time::ZERO),
        )
        .unwrap();
    }
    let out = sim.run();
    assert!(!out.all_delivered());
    let dl = out.deadlock.expect("the cycle must deadlock");
    assert!(dl.queue_exhausted, "no bubbles => detected by exhaustion");
    assert_eq!(dl.stuck_messages.len(), 3);
}

#[test]
fn deadlocked_branch_with_live_sibling_is_caught_by_watchdog() {
    // A multicast forks at s0: one branch joins the ring deadlock, the
    // other delivers to a free leaf and then keeps receiving bubbles
    // forever. Event-queue exhaustion never happens; the progress watchdog
    // must fire instead.
    let mut b = Topology::builder();
    let s = b.add_switches(4); // s0,s1,s2 ring; s3 free leaf
    b.link(s[0], s[1]).unwrap();
    b.link(s[1], s[2]).unwrap();
    b.link(s[2], s[0]).unwrap();
    b.link(s[0], s[3]).unwrap();
    let p: Vec<NodeId> = s
        .iter()
        .map(|&sw| {
            let pp = b.add_processor();
            b.link(pp, sw).unwrap();
            pp
        })
        .collect();
    let topo = b.build();

    let mut oracle = OracleRouting::new(&topo);
    // Ring partners (tags 1, 2) occupy (s1,s2) then want (s2,s0), and
    // (s2,s0) then want (s0,s1).
    oracle
        .add_unicast_path(1, &[p[1], s[1], s[2], s[0], p[0]])
        .unwrap();
    oracle
        .add_unicast_path(2, &[p[2], s[2], s[0], s[1], p[1]])
        .unwrap();
    // Multicast (tag 0) from p0: fork at s0 to the doomed ring branch
    // (s0->s1->s2's processor) and to the free leaf (s3).
    oracle
        .add_tree_edges(0, [(s[0], s[1]), (s[0], s[3])])
        .unwrap();
    oracle.add_tree_edges(0, [(s[1], s[2])]).unwrap();
    oracle.add_tree_edges(0, [(s[2], p[2])]).unwrap();
    oracle.add_tree_edges(0, [(s[3], p[3])]).unwrap();

    let cfg = SimConfig::paper().with_watchdog(Duration::from_us(200));
    let mut sim = NetworkSim::new(&topo, oracle, cfg);
    sim.submit(
        MessageSpec::unicast(p[1], p[1], 2048) // self-destination: rejected
            .tag(1)
            .at(Time::ZERO),
    )
    .unwrap_err(); // self destination rejected — use the proper dest
    sim.submit(MessageSpec::unicast(p[1], p[0], 2048).tag(1).at(Time::ZERO))
        .unwrap();
    sim.submit(MessageSpec::unicast(p[2], p[1], 2048).tag(2).at(Time::ZERO))
        .unwrap();
    sim.submit(
        MessageSpec::multicast(p[0], vec![p[2], p[3]], 2048)
            .tag(0)
            .at(Time::ZERO),
    )
    .unwrap();
    let out = sim.run();
    let dl = out.deadlock.expect("cyclic wait must be detected");
    assert!(
        !dl.queue_exhausted,
        "bubble traffic keeps events flowing; the watchdog must fire"
    );
    assert!(out.counters.bubbles_created > 0);
}

struct ReplyHook {
    reply_len: u32,
    replies_sent: usize,
}

impl CompletionHook for ReplyHook {
    fn on_complete(&mut self, _m: MsgId, spec: &MessageSpec, at: Time) -> Vec<MessageSpec> {
        if spec.tag == 0 {
            self.replies_sent += 1;
            vec![
                MessageSpec::unicast(spec.dests[0], spec.src, self.reply_len)
                    .tag(1)
                    .at(at),
            ]
        } else {
            Vec::new()
        }
    }
}

#[test]
fn completion_hook_injects_reply() {
    let c = chain(2);
    let mut oracle = OracleRouting::new(&c.topo);
    oracle
        .add_unicast_path(0, &[c.p[0], c.s[0], c.s[1], c.p[1]])
        .unwrap();
    oracle
        .add_unicast_path(1, &[c.p[1], c.s[1], c.s[0], c.p[0]])
        .unwrap();
    let mut sim = NetworkSim::new(&c.topo, oracle, SimConfig::paper());
    sim.submit(MessageSpec::unicast(c.p[0], c.p[1], 64).tag(0))
        .unwrap();
    let mut hook = ReplyHook {
        reply_len: 64,
        replies_sent: 0,
    };
    let out = sim.run_with_hook(&mut hook);
    assert_eq!(hook.replies_sent, 1);
    assert_eq!(out.messages.len(), 2, "request plus injected reply");
    assert!(out.all_delivered());
    let req_done = out.messages[0].completed_at.unwrap();
    let rep_done = out.messages[1].completed_at.unwrap();
    assert!(rep_done > req_done);
    // The reply costs a full startup + transfer on top of the request.
    assert!(rep_done.since(req_done) >= Duration::from_us(10));
}

#[test]
fn deeper_buffers_never_hurt_latency() {
    let c = chain(5);
    let run = |inp: usize, outp: usize| {
        let mut oracle = OracleRouting::new(&c.topo);
        let mut path = vec![c.p[0]];
        path.extend(&c.s);
        path.push(c.p[4]);
        oracle.add_unicast_path(0, &path).unwrap();
        let mut sim = NetworkSim::new(&c.topo, oracle, SimConfig::paper().with_buffers(inp, outp));
        sim.submit(MessageSpec::unicast(c.p[0], c.p[4], 128))
            .unwrap();
        let out = sim.run();
        assert!(out.all_delivered());
        out.messages[0].latency().unwrap().as_ns()
    };
    let base = run(1, 1);
    for (i, o) in [(2, 1), (1, 2), (4, 4), (8, 8)] {
        assert!(run(i, o) <= base, "buffers ({i},{o}) regressed latency");
    }
}

#[test]
fn identical_runs_are_bit_identical() {
    let collect = || {
        let net = star(3);
        let mut oracle = OracleRouting::new(&net.topo);
        for (tag, leaf) in [(0u64, 1usize), (1, 2), (2, 3)] {
            oracle
                .add_unicast_path(tag, &[net.p[0], net.s[0], net.s[leaf], net.p[leaf]])
                .unwrap();
        }
        let mut sim = NetworkSim::new(&net.topo, oracle, SimConfig::paper());
        for tag in 0..3u64 {
            let leaf = tag as usize + 1;
            sim.submit(
                MessageSpec::unicast(net.p[0], net.p[leaf], 128)
                    .tag(tag)
                    .at(Time::from_ns(tag * 100)),
            )
            .unwrap();
        }
        let out = sim.run();
        assert!(out.all_delivered());
        (
            out.messages
                .iter()
                .map(|m| m.completed_at.unwrap().as_ns())
                .collect::<Vec<_>>(),
            out.counters,
        )
    };
    assert_eq!(collect(), collect());
}

#[test]
fn flit_accounting_is_exact() {
    let c = chain(3);
    let mut oracle = OracleRouting::new(&c.topo);
    oracle
        .add_unicast_path(0, &[c.p[0], c.s[0], c.s[1], c.s[2], c.p[2]])
        .unwrap();
    let mut sim = NetworkSim::new(&c.topo, oracle, SimConfig::paper());
    sim.submit(MessageSpec::unicast(c.p[0], c.p[2], 100))
        .unwrap();
    let out = sim.run();
    assert_eq!(out.counters.flits_delivered, 100);
    assert_eq!(out.counters.bubbles_created, 0);
    // 4 channels × 100 flits.
    assert_eq!(out.counters.wire_transfers, 400);
    // One acquisition at the source + one per switch.
    assert_eq!(out.counters.acquisitions, 4);
    assert_eq!(out.counters.messages_completed, 1);
}

#[test]
fn extra_header_flits_lengthen_worms_predictably() {
    let c = chain(3);
    let run = |extra: u32| {
        let mut oracle = OracleRouting::new(&c.topo);
        oracle
            .add_unicast_path(0, &[c.p[0], c.s[0], c.s[1], c.s[2], c.p[2]])
            .unwrap();
        let mut sim = NetworkSim::new(
            &c.topo,
            oracle,
            SimConfig::paper().with_extra_header_flits(extra),
        );
        sim.submit(MessageSpec::unicast(c.p[0], c.p[2], 128))
            .unwrap();
        let out = sim.run();
        assert!(out.all_delivered());
        out.messages[0].latency().unwrap().as_ns()
    };
    let base = run(0);
    // Each extra header flit adds exactly one channel cycle to the tail
    // arrival (the pipeline is one flit per 10 ns).
    assert_eq!(run(1), base + 10);
    assert_eq!(run(4), base + 40);
}

#[test]
fn channel_crossings_account_for_all_wire_traffic() {
    let c = chain(2);
    let mut oracle = OracleRouting::new(&c.topo);
    oracle
        .add_unicast_path(0, &[c.p[0], c.s[0], c.s[1], c.p[1]])
        .unwrap();
    let mut sim = NetworkSim::new(&c.topo, oracle, SimConfig::paper());
    sim.submit(MessageSpec::unicast(c.p[0], c.p[1], 64))
        .unwrap();
    let out = sim.run();
    assert!(out.all_delivered());
    let total: u64 = out.channel_crossings.iter().sum();
    assert_eq!(total, out.counters.wire_transfers);
    // The three path channels carried 64 flits each; the rest nothing.
    let mut loads: Vec<u64> = out.channel_crossings.clone();
    loads.sort_unstable();
    loads.reverse();
    assert_eq!(&loads[..3], &[64, 64, 64]);
    assert!(loads[3..].iter().all(|&l| l == 0));
    assert_eq!(out.hottest_channels(1)[0].1, 64);
}
