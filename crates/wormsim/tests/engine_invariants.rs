//! Property tests of the engine's conservation laws on random tree
//! topologies with scripted tree routing. Trees make the expected flit
//! economics exactly computable (each real flit crosses every channel of
//! its routing tree exactly once) and make arbitrary concurrent traffic
//! provably deadlock-free (each direction's channels form a forest), so
//! full delivery is a hard requirement, not a hope.

use desim::Time;
use netgraph::{NodeId, Topology};
use proptest::prelude::*;
use std::collections::{HashMap, HashSet};
use wormsim::routing::OracleRouting;
use wormsim::{MessageSpec, NetworkSim, SimConfig};

/// A random recursive tree of `n` switches (parent of i is random < i),
/// one processor per switch.
struct TreeNet {
    topo: Topology,
    parent: Vec<usize>, // parent[switch_index]; parent[0] = 0
    switches: Vec<NodeId>,
    procs: Vec<NodeId>,
}

fn tree_net(n: usize, parent_picks: &[u32]) -> TreeNet {
    let mut b = Topology::builder();
    let switches = b.add_switches(n);
    let mut parent = vec![0usize; n];
    for i in 1..n {
        let p = (parent_picks[(i - 1) % parent_picks.len()] as usize) % i;
        parent[i] = p;
        b.link(switches[i], switches[p]).unwrap();
    }
    let procs: Vec<NodeId> = switches
        .iter()
        .map(|&s| {
            let p = b.add_processor();
            b.link(p, s).unwrap();
            p
        })
        .collect();
    TreeNet {
        topo: b.build(),
        parent,
        switches,
        procs,
    }
}

impl TreeNet {
    /// Switch-index path between two switch indices through the tree.
    fn path(&self, a: usize, bdx: usize) -> Vec<usize> {
        let chain = |mut x: usize| {
            let mut v = vec![x];
            while x != 0 {
                x = self.parent[x];
                v.push(x);
            }
            v
        };
        let ca = chain(a);
        let cb = chain(bdx);
        let sb: HashSet<usize> = cb.iter().copied().collect();
        let meet = *ca.iter().find(|x| sb.contains(x)).unwrap();
        let mut path: Vec<usize> = ca.iter().take_while(|&&x| x != meet).copied().collect();
        path.push(meet);
        let mut down: Vec<usize> = cb.iter().take_while(|&&x| x != meet).copied().collect();
        down.reverse();
        path.extend(down);
        path
    }

    /// Directed edge set (as node pairs) of the multicast tree from
    /// `src_sw` covering `dest_sws`, plus the processor delivery edges.
    fn plan(&self, src: usize, dests: &[usize]) -> Vec<(NodeId, NodeId)> {
        let mut edges: Vec<(NodeId, NodeId)> = Vec::new();
        let mut seen = HashSet::new();
        for &d in dests {
            let p = self.path(src, d);
            for w in p.windows(2) {
                let e = (self.switches[w[0]], self.switches[w[1]]);
                if seen.insert(e) {
                    edges.push(e);
                }
            }
            let deliver = (self.switches[d], self.procs[d]);
            if seen.insert(deliver) {
                edges.push(deliver);
            }
        }
        edges
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn flit_conservation_and_delivery_on_random_trees(
        n in 3usize..16,
        parent_picks in prop::collection::vec(any::<u32>(), 4..12),
        msgs in prop::collection::vec(
            (any::<u32>(), prop::collection::vec(any::<u32>(), 1..5), 2u32..40, 0u64..30_000),
            1..8,
        ),
    ) {
        let net = tree_net(n, &parent_picks);
        let mut oracle = OracleRouting::new(&net.topo);
        let mut specs = Vec::new();
        let mut expected_real_crossings = 0u64;
        let mut expected_acquisitions = 0u64;
        let mut expected_delivered = 0u64;
        for (tag, (src_pick, dest_picks, len, gen_ns)) in msgs.iter().enumerate() {
            let src = (*src_pick as usize) % n;
            let dests: Vec<usize> = {
                let mut d: Vec<usize> = dest_picks
                    .iter()
                    .map(|p| (*p as usize) % n)
                    .filter(|&d| d != src)
                    .collect();
                d.sort_unstable();
                d.dedup();
                d
            };
            if dests.is_empty() {
                continue;
            }
            let edges = net.plan(src, &dests);
            // Real crossings: injection channel + one per plan edge, len each.
            expected_real_crossings += (*len as u64) * (edges.len() as u64 + 1);
            // Acquisitions: source + one per switch that forwards (distinct
            // edge sources) — the injection's switch is among them.
            let forwarding: HashSet<NodeId> = edges.iter().map(|e| e.0).collect();
            expected_acquisitions += 1 + forwarding.len() as u64;
            expected_delivered += (*len as u64) * dests.len() as u64;
            oracle.add_tree_edges(tag as u64, edges).unwrap();
            specs.push(
                MessageSpec::multicast(
                    net.procs[src],
                    dests.iter().map(|&d| net.procs[d]).collect(),
                    *len,
                )
                .tag(tag as u64)
                .at(Time::from_ns(*gen_ns)),
            );
        }
        prop_assume!(!specs.is_empty());

        let mut sim = NetworkSim::new(&net.topo, oracle, SimConfig::paper());
        for s in &specs {
            sim.submit(s.clone()).unwrap();
        }
        let out = sim.run();

        // Tree-path traffic is deadlock-free: delivery is mandatory.
        prop_assert!(out.all_delivered(), "{:?}", out.deadlock);
        // Exactly the expected number of real flits consumed.
        prop_assert_eq!(out.counters.flits_delivered, expected_delivered);
        // Every real flit crosses every channel of its tree exactly once;
        // bubbles account for the rest of the wire traffic.
        prop_assert!(out.counters.wire_transfers >= expected_real_crossings);
        prop_assert_eq!(out.counters.acquisitions, expected_acquisitions);
        prop_assert_eq!(out.counters.messages_completed, specs.len() as u64);

        // Latency lower bound per message: startup + path + pipeline.
        for m in &out.messages {
            let lat = m.latency().unwrap().as_ns();
            prop_assert!(lat >= 10_000 + (m.spec.len as u64 - 1) * 10);
        }
    }

    #[test]
    fn per_destination_times_bounded_by_completion(
        n in 3usize..12,
        parent_picks in prop::collection::vec(any::<u32>(), 4..8),
        src_pick in any::<u32>(),
        dest_picks in prop::collection::vec(any::<u32>(), 2..6),
    ) {
        let net = tree_net(n, &parent_picks);
        let src = (src_pick as usize) % n;
        let mut dests: Vec<usize> = dest_picks
            .iter()
            .map(|p| (*p as usize) % n)
            .filter(|&d| d != src)
            .collect();
        dests.sort_unstable();
        dests.dedup();
        prop_assume!(!dests.is_empty());
        let mut oracle = OracleRouting::new(&net.topo);
        oracle.add_tree_edges(0, net.plan(src, &dests)).unwrap();
        let mut sim = NetworkSim::new(&net.topo, oracle, SimConfig::paper());
        sim.submit(MessageSpec::multicast(
            net.procs[src],
            dests.iter().map(|&d| net.procs[d]).collect(),
            32,
        ))
        .unwrap();
        let out = sim.run();
        prop_assert!(out.all_delivered());
        let m = &out.messages[0];
        let done = m.completed_at.unwrap();
        let mut latest = Time::ZERO;
        for d in &m.dest_done_at {
            let t = d.unwrap();
            prop_assert!(t <= done);
            latest = latest.max(t);
        }
        prop_assert_eq!(latest, done, "completion is the max dest time");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Teardown hygiene under arbitrary mid-run link deaths: kill random
    /// links at random instants while scripted tree traffic is in flight.
    /// Every message must end with a verdict (delivered, torn down, or
    /// unreachable), the run must never deadlock — a leaked channel
    /// reservation or orphaned OCRQ entry would wedge the survivors into
    /// the watchdog — and the engine's end-of-run quiescence assertions
    /// (active in these debug-build tests) check the books directly.
    #[test]
    fn teardown_hygiene_after_arbitrary_link_deaths(
        n in 4usize..14,
        parent_picks in prop::collection::vec(any::<u32>(), 4..12),
        msgs in prop::collection::vec(
            (any::<u32>(), prop::collection::vec(any::<u32>(), 1..5), 2u32..40, 0u64..30_000),
            2..8,
        ),
        kills in prop::collection::vec((any::<u32>(), 9_500u64..45_000), 1..5),
    ) {
        let net = tree_net(n, &parent_picks);
        let run = || {
            let mut oracle = OracleRouting::new(&net.topo);
            let mut specs = Vec::new();
            for (tag, (src_pick, dest_picks, len, gen_ns)) in msgs.iter().enumerate() {
                let src = (*src_pick as usize) % n;
                let dests: Vec<usize> = {
                    let mut d: Vec<usize> = dest_picks
                        .iter()
                        .map(|p| (*p as usize) % n)
                        .filter(|&d| d != src)
                        .collect();
                    d.sort_unstable();
                    d.dedup();
                    d
                };
                if dests.is_empty() {
                    continue;
                }
                oracle.add_tree_edges(tag as u64, net.plan(src, &dests)).unwrap();
                specs.push(
                    MessageSpec::multicast(
                        net.procs[src],
                        dests.iter().map(|&d| net.procs[d]).collect(),
                        *len,
                    )
                    .tag(tag as u64)
                    .at(Time::from_ns(*gen_ns)),
                );
            }
            let mut sim = NetworkSim::new(&net.topo, oracle, SimConfig::paper());
            for s in &specs {
                sim.submit(s.clone()).unwrap();
            }
            let links = net.topo.num_channels() / 2;
            for (pick, at_ns) in &kills {
                let link = netgraph::ChannelId(2 * ((*pick as usize % links) as u32));
                sim.schedule_link_down(Time::from_ns(*at_ns), link);
            }
            let submitted = specs.len() as u64;
            (sim.run(), submitted)
        };
        let (out, submitted) = run();
        prop_assume!(submitted > 0);
        prop_assert!(out.error.is_none(), "run aborted: {:?}", out.error);
        prop_assert!(out.deadlock.is_none(), "deadlock: {:?}", out.deadlock);
        prop_assert!(out.all_accounted());
        let c = &out.counters;
        prop_assert_eq!(
            c.messages_completed + c.messages_torn_down + c.messages_unreachable,
            submitted,
            "verdicts partition the message set"
        );
        prop_assert!(c.links_killed >= 1);
        // A torn-down message must carry the typed error and no
        // completion time; a delivered one the inverse.
        for m in &out.messages {
            match &m.failure {
                Some(f) => {
                    prop_assert!(m.completed_at.is_none());
                    let typed = matches!(
                        f.error,
                        wormsim::SimError::TornDown { .. } | wormsim::SimError::Route { .. }
                    );
                    prop_assert!(typed, "unexpected failure error {:?}", f.error);
                }
                None => prop_assert!(m.completed_at.is_some()),
            }
        }
        // Determinism: an identical run reproduces every verdict and time.
        let (out2, _) = run();
        prop_assert_eq!(&out.counters, &out2.counters);
        prop_assert_eq!(out.end_time, out2.end_time);
        for (a, b) in out.messages.iter().zip(&out2.messages) {
            prop_assert_eq!(a.completed_at, b.completed_at);
            prop_assert_eq!(a.failure.map(|f| f.at), b.failure.map(|f| f.at));
        }
    }
}

/// Regression: a fault landing inside the router-setup window of a worm
/// whose upstream segment has *already released* must still purge the
/// header's branch state. With a 2-flit worm the source segment retires as
/// soon as the tail is replicated (~10.01 µs), while the header waits out
/// its 40 ns setup at the first switch — killing the injection link at
/// 10.02 µs used to leak `branch_state[(msg, inj)]` and trip the
/// end-of-run quiescence assertions.
#[test]
fn teardown_inside_router_setup_window_leaks_nothing() {
    let mut b = Topology::builder();
    let s0 = b.add_switch();
    let s1 = b.add_switch();
    let p0 = b.add_processor();
    let p1 = b.add_processor();
    b.link(p0, s0).unwrap();
    b.link(s0, s1).unwrap();
    b.link(s1, p1).unwrap();
    let topo = b.build();
    let inj = topo.out_channels(p0)[0];
    let mut oracle = OracleRouting::new(&topo);
    oracle.add_unicast_path(0, &[p0, s0, s1, p1]).unwrap();
    let mut sim = NetworkSim::new(&topo, oracle, SimConfig::paper());
    sim.submit(MessageSpec::unicast(p0, p1, 2)).unwrap();
    sim.schedule_link_down(Time::from_ns(10_020), inj);
    let out = sim.run();
    assert!(out.error.is_none(), "{:?}", out.error);
    assert!(out.deadlock.is_none(), "{:?}", out.deadlock);
    assert!(out.messages[0].is_torn_down());
    assert_eq!(out.counters.messages_torn_down, 1);
    // The run's internal quiescence debug_asserts (active in this test
    // build) are the real check; reaching here means nothing leaked.
}

/// Determinism across buffer depths: same traffic, different buffer
/// geometry — results may differ, but each configuration is internally
/// deterministic and all deliver.
#[test]
fn all_buffer_geometries_deliver_same_message_set() {
    let net = tree_net(9, &[3, 1, 4, 1, 5]);
    let dests = vec![2usize, 5, 7];
    for (inp, outp) in [(1, 1), (2, 1), (1, 2), (4, 4)] {
        let mut oracle = OracleRouting::new(&net.topo);
        oracle.add_tree_edges(0, net.plan(0, &dests)).unwrap();
        let mut sim = NetworkSim::new(
            &net.topo,
            oracle,
            SimConfig::paper().with_buffers(inp, outp),
        );
        sim.submit(MessageSpec::multicast(
            net.procs[0],
            dests.iter().map(|&d| net.procs[d]).collect(),
            64,
        ))
        .unwrap();
        let out = sim.run();
        assert!(out.all_delivered(), "buffers ({inp},{outp})");
        assert_eq!(out.counters.flits_delivered, 64 * 3);
    }
}

/// The same plan expressed per-message via a HashMap round-trips through
/// the oracle (guards the oracle's own bookkeeping).
#[test]
fn oracle_handles_many_tags_independently() {
    let net = tree_net(8, &[2, 3, 1]);
    let mut oracle = OracleRouting::new(&net.topo);
    let mut sim_plan: HashMap<u64, Vec<usize>> = HashMap::new();
    for tag in 0..6u64 {
        let d = vec![(tag as usize + 1) % 8, (tag as usize + 3) % 8];
        let dests: Vec<usize> = d.into_iter().filter(|&x| x != 0).collect();
        oracle.add_tree_edges(tag, net.plan(0, &dests)).unwrap();
        sim_plan.insert(tag, dests);
    }
    let mut sim = NetworkSim::new(&net.topo, oracle, SimConfig::paper());
    for (tag, dests) in &sim_plan {
        sim.submit(
            MessageSpec::multicast(
                net.procs[0],
                dests.iter().map(|&d| net.procs[d]).collect(),
                16,
            )
            .tag(*tag),
        )
        .unwrap();
    }
    let out = sim.run();
    assert!(out.all_delivered());
    assert_eq!(out.counters.messages_completed, sim_plan.len() as u64);
}
