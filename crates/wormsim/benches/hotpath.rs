//! Microbenchmarks for the engine's hot-path primitives: segment
//! allocation/free in the slab arena, event-queue push/pop under both
//! implementations, and one SPAM routed hop through the scratch-based
//! decision path.
//!
//! ```text
//! cargo bench -p wormsim --bench hotpath
//! ```

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use desim::{EventQueue, QueueKind, Time};
use netgraph::NodeId;
use spam_collections::{InlineVec, Slab};
use spam_core::{RouteScratch, SpamRouting};
use updown::{RootSelection, UpDownLabeling};
use wormsim::{MessageSpec, RouteDecision, RoutingAlgorithm};

/// Mirrors the engine's `Segment` payload (message id stand-in, input
/// marker, inline output list, flag).
struct SegLike {
    _msg: u32,
    _input: u32,
    _outputs: InlineVec<u32, 4>,
    _acquired: bool,
}

fn bench_segment_alloc_free(c: &mut Criterion) {
    // Steady-state churn: one segment allocated and freed per worm-router
    // traversal, with a handful live at any time.
    let mut slab: Slab<SegLike> = Slab::new();
    let live: Vec<_> = (0..64)
        .map(|i| {
            slab.insert(SegLike {
                _msg: i,
                _input: i,
                _outputs: InlineVec::from_slice(&[i, i + 1]),
                _acquired: false,
            })
        })
        .collect();
    let mut i = 0usize;
    c.bench_function("slab_segment_alloc_free", |b| {
        b.iter(|| {
            let id = slab.insert(SegLike {
                _msg: 7,
                _input: 9,
                _outputs: InlineVec::from_slice(&[1, 2, 3]),
                _acquired: true,
            });
            black_box(slab.get(id));
            slab.remove(id).unwrap();
            // Touch a rotating live entry to keep the arena honest.
            i = (i + 1) % live.len();
            black_box(slab.get(live[i]));
        })
    });
}

fn bench_queue_push_pop(c: &mut Criterion) {
    // The engine's cadence: one pop, a few near-future pushes (channel
    // propagation, router setup), repeated forever.
    for (name, kind) in [
        ("heap_queue_push_pop", QueueKind::Heap),
        ("bucket_queue_push_pop", QueueKind::Bucket),
    ] {
        let mut q = EventQueue::with_kind(kind);
        for i in 0..256u64 {
            q.schedule(Time::from_ns(i * 10), i);
        }
        c.bench_function(name, |b| {
            b.iter(|| {
                let (t, e) = q.pop().expect("queue stays primed");
                q.schedule(t + desim::Duration::from_ns(10), e);
                q.schedule(t + desim::Duration::from_ns(40), e ^ 1);
                let (t2, e2) = q.pop().expect("queue stays primed");
                black_box((t2, e2));
            })
        });
    }
}

fn bench_routed_hop(c: &mut Criterion) {
    // One SPAM unicast-stage decision on a 64-switch irregular network,
    // through the same scratch-based path the engine drives.
    let topo = netgraph::gen::lattice::IrregularConfig::with_switches(64).generate(2024);
    let ud = UpDownLabeling::build(&topo, RootSelection::LowestId);
    let spam = SpamRouting::new(&topo, &ud);
    let procs: Vec<NodeId> = topo.processors().collect();
    let spec = MessageSpec::unicast(procs[0], procs[40], 32);
    let header = spam.initial_header(&spec).expect("routable");
    // The switch the injection channel leads to.
    let inj = topo.out_channels(procs[0])[0];
    let node = topo.channel(inj).dst;
    let mut scratch = RouteScratch::default();
    let mut out = RouteDecision::default();
    c.bench_function("spam_routed_hop", |b| {
        b.iter(|| {
            out.clear();
            spam.route(
                black_box(node),
                inj,
                black_box(&header),
                &spec,
                &mut scratch,
                &mut out,
            )
            .expect("legal hop");
            black_box(out.requests.len());
        })
    });
}

fn benches(c: &mut Criterion) {
    bench_segment_alloc_free(c);
    bench_queue_push_pop(c);
    bench_routed_hop(c);
}

criterion_group!(hotpath, benches);
criterion_main!(hotpath);
