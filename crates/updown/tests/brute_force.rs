//! Property tests validating the optimized bit-matrix relations against
//! naive graph-walk reference implementations, over random topologies.

use netgraph::gen::lattice::{IrregularConfig, LatticeStrategy};
use netgraph::{NodeId, Topology};
use proptest::prelude::*;
use std::collections::VecDeque;
use updown::{ChannelClass, RootSelection, UpDownLabeling};

/// Reference ancestor: walk the parent chain of `v` looking for `u`.
fn ancestor_ref(ud: &UpDownLabeling, u: NodeId, v: NodeId) -> bool {
    let mut cur = v;
    loop {
        if cur == u {
            return true;
        }
        match ud.parent(cur) {
            Some(p) => cur = p,
            None => return false,
        }
    }
}

/// Reference extended ancestor: BFS over down-cross channels then check
/// plain ancestry — literally Definition 1.
fn extended_ancestor_ref(topo: &Topology, ud: &UpDownLabeling, u: NodeId, v: NodeId) -> bool {
    let mut seen = vec![false; topo.num_nodes()];
    let mut q = VecDeque::new();
    seen[u.index()] = true;
    q.push_back(u);
    while let Some(x) = q.pop_front() {
        if ancestor_ref(ud, x, v) {
            return true;
        }
        for &c in topo.out_channels(x) {
            if ud.class(c) == ChannelClass::DownCross {
                let w = topo.channel(c).dst;
                if !seen[w.index()] {
                    seen[w.index()] = true;
                    q.push_back(w);
                }
            }
        }
    }
    false
}

/// Reference LCA: intersect ancestor chains.
fn lca_ref(ud: &UpDownLabeling, a: NodeId, b: NodeId) -> NodeId {
    let chain = |mut n: NodeId| {
        let mut v = vec![n];
        while let Some(p) = ud.parent(n) {
            v.push(p);
            n = p;
        }
        v
    };
    let ca = chain(a);
    let cb = chain(b);
    *ca.iter()
        .find(|x| cb.contains(x))
        .expect("chains share the root")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn ancestor_matrix_matches_parent_walks(
        switches in 6usize..28,
        seed in any::<u64>(),
    ) {
        let topo = IrregularConfig::with_switches(switches).generate(seed);
        let ud = UpDownLabeling::build(&topo, RootSelection::LowestId);
        for u in topo.nodes() {
            for v in topo.nodes() {
                prop_assert_eq!(
                    ud.is_ancestor(u, v),
                    ancestor_ref(&ud, u, v),
                    "ancestor({}, {})", u, v
                );
            }
        }
    }

    #[test]
    fn extended_ancestor_matrix_matches_definition_1(
        switches in 6usize..20,
        seed in any::<u64>(),
    ) {
        let topo = IrregularConfig::with_switches(switches)
            .strategy(LatticeStrategy::UniformRetry)
            .generate(seed);
        let ud = UpDownLabeling::build(&topo, RootSelection::LowestId);
        for u in topo.nodes() {
            for v in topo.nodes() {
                prop_assert_eq!(
                    ud.is_extended_ancestor(u, v),
                    extended_ancestor_ref(&topo, &ud, u, v),
                    "ext_ancestor({}, {})", u, v
                );
            }
        }
    }

    #[test]
    fn lca_matches_chain_intersection(
        switches in 6usize..28,
        seed in any::<u64>(),
        picks in prop::collection::vec(any::<u32>(), 2..6),
    ) {
        let topo = IrregularConfig::with_switches(switches).generate(seed);
        let ud = UpDownLabeling::build(&topo, RootSelection::MaxDegree);
        let procs: Vec<NodeId> = topo.processors().collect();
        let dests: Vec<NodeId> = picks
            .iter()
            .map(|p| procs[(*p as usize) % procs.len()])
            .collect();
        let fast = ud.lca_of(&dests).unwrap();
        let slow = dests
            .iter()
            .copied()
            .reduce(|a, b| lca_ref(&ud, a, b))
            .unwrap();
        prop_assert_eq!(fast, slow);
    }

    #[test]
    fn classification_covers_exactly_the_channel_set(
        switches in 4usize..32,
        seed in any::<u64>(),
    ) {
        let topo = IrregularConfig::with_switches(switches).generate(seed);
        let ud = UpDownLabeling::build(&topo, RootSelection::LowestId);
        // Pairing: each link has exactly one up and one down direction.
        for c in topo.channel_ids() {
            let rev = topo.reverse(c);
            prop_assert_ne!(ud.class(c).is_up(), ud.class(rev).is_up());
            // Tree-ness agrees between the two directions.
            let tree = |k: ChannelClass| {
                matches!(k, ChannelClass::UpTree | ChannelClass::DownTree)
            };
            prop_assert_eq!(tree(ud.class(c)), tree(ud.class(rev)));
        }
        // Tree channels form a spanning tree: node count - 1 links.
        let (ut, _, dt, _) = ud.class_counts();
        prop_assert_eq!(ut, topo.num_nodes() - 1);
        prop_assert_eq!(dt, topo.num_nodes() - 1);
        // Up channels strictly decrease (level, id); down strictly increase.
        for (c, class) in ud.classes() {
            let ch = topo.channel(c);
            let key = |n: NodeId| (ud.level(n), n);
            if class.is_up() {
                prop_assert!(key(ch.dst) < key(ch.src), "{c}: up must descend the key");
            } else {
                prop_assert!(key(ch.dst) > key(ch.src), "{c}: down must ascend the key");
            }
        }
    }

    #[test]
    fn levels_match_tree_distance_from_root(
        switches in 4usize..32,
        seed in any::<u64>(),
    ) {
        let topo = IrregularConfig::with_switches(switches).generate(seed);
        let ud = UpDownLabeling::build(&topo, RootSelection::MinEccentricity);
        for v in topo.nodes() {
            let mut level = 0;
            let mut cur = v;
            while let Some(p) = ud.parent(cur) {
                level += 1;
                cur = p;
            }
            prop_assert_eq!(cur, ud.root());
            prop_assert_eq!(ud.level(v), level);
        }
    }

    /// Reconfiguration invariant: for random lattices and random fault
    /// sets, every surviving component's rebuilt labeling is a valid
    /// up*/down* partition — every surviving channel classed with one up
    /// and one down direction per link, spanning-tree channel counts,
    /// acyclic up/down digraphs (the Theorem 1 preconditions), and up
    /// channels strictly descending the (level, id) key inside the
    /// component.
    #[test]
    fn degraded_components_keep_a_valid_channel_partition(
        switches in 8usize..48,
        topo_seed in any::<u64>(),
        fault_seed in any::<u64>(),
        rate in 0.0f64..0.45,
    ) {
        use spam_faults::{DegradedNetwork, FaultModel};
        use updown::check_acyclic_subnetworks;

        let base = IrregularConfig::with_switches(switches).generate(topo_seed);
        let plan = FaultModel::IidLinks { rate }.sample(&base, None, fault_seed);
        let net = DegradedNetwork::build(&base, &plan, None);
        let topo = &net.topo;

        let mut covered = vec![false; topo.num_channels()];
        for comp in &net.components {
            let ud = &comp.labeling;
            // The labeling covers exactly the component.
            prop_assert_eq!(ud.num_labeled(), comp.nodes.len());
            for &n in &comp.nodes {
                prop_assert!(ud.is_labeled(n));
            }
            // Theorem 1 preconditions hold for this labeling.
            prop_assert!(check_acyclic_subnetworks(topo, ud).all_ok());
            let mut down_tree_in_comp = 0usize;
            for c in topo.channel_ids() {
                let ch = topo.channel(c);
                if !comp.contains(ch.src) {
                    continue;
                }
                // Components are closed under surviving channels.
                prop_assert!(comp.contains(ch.dst), "{} leaves its component", c);
                covered[c.index()] = true;
                // One up and one down direction per surviving link.
                prop_assert_ne!(
                    ud.class(c).is_up(),
                    ud.class(topo.reverse(c)).is_up(),
                    "link of {} needs one up and one down direction", c
                );
                // Up strictly descends (level, id); down strictly ascends.
                let key = |n| (ud.level(n), n);
                if ud.class(c).is_up() {
                    prop_assert!(key(ch.dst) < key(ch.src));
                } else {
                    prop_assert!(key(ch.dst) > key(ch.src));
                }
                if ud.class(c) == ChannelClass::DownTree {
                    down_tree_in_comp += 1;
                }
            }
            // The down-tree channels inside the component form a spanning
            // tree: one per non-root member.
            prop_assert_eq!(down_tree_in_comp, comp.nodes.len() - 1);
            // Ancestor sanity inside the component: the root is an
            // ancestor (and extended ancestor) of every member.
            for &n in &comp.nodes {
                prop_assert!(ud.is_ancestor(comp.root, n));
                prop_assert!(ud.is_extended_ancestor(comp.root, n));
            }
        }
        // Every surviving channel belongs to exactly one component's
        // labeled region (dead nodes keep no channels in the masked view).
        for c in topo.channel_ids() {
            prop_assert!(covered[c.index()], "{} classed by no component", c);
        }
    }
}
