//! The up*/down* labeling: spanning tree, levels, channel classes, and the
//! ancestor / extended-ancestor relations of Definition 1.

use crate::bitmat::BitMatrix;
use netgraph::algo;
use netgraph::{ChannelId, DegradedTopology, NodeId, Topology};
use rand::seq::IteratorRandom;
use rand::SeedableRng;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// The four-way channel classification of §3.1.
///
/// Tree channels follow spanning-tree edges; cross channels are the
/// remaining (switch-to-switch) links. "Up" points towards the root — for a
/// cross channel between same-level switches, from the larger node id to the
/// smaller (the paper's tie-break).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ChannelClass {
    /// Tree channel directed towards the root.
    UpTree,
    /// Cross channel directed towards the root (lower level, or same level
    /// from larger to smaller id).
    UpCross,
    /// Tree channel directed away from the root. The only class a multicast
    /// worm may use past the LCA, and the only class that may deliver to a
    /// processor.
    DownTree,
    /// Cross channel directed away from the root.
    DownCross,
}

impl ChannelClass {
    /// True for [`ChannelClass::UpTree`] / [`ChannelClass::UpCross`].
    #[inline]
    pub fn is_up(self) -> bool {
        matches!(self, ChannelClass::UpTree | ChannelClass::UpCross)
    }

    /// True for [`ChannelClass::DownTree`] / [`ChannelClass::DownCross`].
    #[inline]
    pub fn is_down(self) -> bool {
        !self.is_up()
    }
}

/// How the spanning-tree root switch is chosen.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RootSelection {
    /// A caller-chosen switch (e.g. node 1 in Figure 1).
    Fixed(NodeId),
    /// The switch with the smallest id ("an arbitrary vertex", determinized).
    LowestId,
    /// The switch with the most links; shallow trees on hub-ish networks.
    MaxDegree,
    /// A network center: the switch of minimum eccentricity. Minimizes the
    /// worst-case tree depth — one of the §5 tree-selection policies.
    MinEccentricity,
    /// Uniformly random switch from a seeded RNG.
    RandomSeeded(u64),
}

/// What an incremental relabeling ([`UpDownLabeling::relabel_after`]) did —
/// the reconfiguration cost a real switch fabric would pay.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RelabelReport {
    /// Root of the new labeling (the old root whenever it survived).
    pub root: NodeId,
    /// Old spanning-tree edges kept with their parent pointers intact.
    pub kept_tree_edges: usize,
    /// Nodes that received a new parent (their old tree path to the root
    /// was severed, or the whole tree was rebuilt).
    pub reattached_nodes: usize,
    /// Nodes covered by the new labeling (the root's surviving component).
    pub labeled_nodes: usize,
    /// Surviving channels whose class changed relative to the old
    /// labeling — the relabeling's blast radius, i.e. how many routing
    /// table entries a live fabric would have to rewrite.
    pub changed_channels: usize,
    /// True when the old root died and the tree was rebuilt from scratch
    /// instead of patched.
    pub full_rebuild: bool,
}

/// An immutable up*/down* labeling of a topology.
///
/// Construction is `O(V·depth + V²/64·cross)`: BFS tree, per-channel
/// classification, then bit-matrix closures for the ancestor and extended
/// ancestor relations so routing-time queries are O(1).
#[derive(Debug, Clone)]
pub struct UpDownLabeling {
    root: NodeId,
    parent: Vec<Option<NodeId>>,
    level: Vec<u32>,
    /// True for nodes in the root's component. Always all-true for
    /// labelings from [`UpDownLabeling::build`]; partial labelings (built
    /// on degraded topologies) leave other components unlabeled.
    labeled: Vec<bool>,
    class: Vec<ChannelClass>,
    children: Vec<Vec<NodeId>>,
    /// `anc.get(u, v)` ⇔ `u` is an ancestor of `v` (reflexive).
    anc: BitMatrix,
    /// `ext.get(u, v)` ⇔ `u` is an extended ancestor of `v` (reflexive).
    ext: BitMatrix,
}

impl UpDownLabeling {
    /// Builds the labeling for `topo` with the given root policy.
    ///
    /// The spanning tree is a deterministic BFS tree (neighbors visited in
    /// ascending node-id order), matching the construction the Figure 1
    /// walkthrough assumes.
    ///
    /// # Panics
    ///
    /// Panics if the topology has no switches, is disconnected, or the fixed
    /// root is not a switch.
    pub fn build(topo: &Topology, root_sel: RootSelection) -> Self {
        let root = resolve_root(topo, root_sel);
        assert!(topo.is_switch(root), "root {root} must be a switch");
        let labeling = Self::build_from_root(topo, root);
        assert!(
            labeling.labeled.iter().all(|l| *l),
            "up*/down* labeling requires a connected network"
        );
        labeling
    }

    /// Builds a **partial** labeling covering only the connected component
    /// of `root` — the reconfiguration primitive for degraded (faulty)
    /// topologies, where the network may have split and the old root may
    /// have died.
    ///
    /// Nodes outside the root's component are left unlabeled:
    /// [`Self::is_labeled`] returns `false`, [`Self::level`] returns
    /// `u32::MAX`, and [`Self::parent`] returns `None` for them. Channels
    /// between unlabeled nodes still receive a (consistent, acyclic)
    /// class so the partition is total, but ancestor/LCA queries are only
    /// meaningful within the labeled component — label each surviving
    /// component with its own root instead of mixing them.
    ///
    /// # Panics
    ///
    /// Panics if `root` is not a switch.
    pub fn build_partial(topo: &Topology, root: NodeId) -> Self {
        assert!(topo.is_switch(root), "root {root} must be a switch");
        Self::build_from_root(topo, root)
    }

    /// Incrementally relabels this labeling's base topology after faults —
    /// the *online* half of the Autonet reconfiguration story, for link
    /// and switch deaths that happen while a simulation is running.
    ///
    /// `view` must be a degraded view over the same topology this labeling
    /// was built on (same node and channel ids). The new labeling covers
    /// the surviving component of the root: when the old root is alive,
    /// the old spanning tree is *patched* — every old tree edge that still
    /// connects to the root through surviving tree edges keeps its parent
    /// pointer and level, and only orphaned survivors are reattached (in
    /// deterministic `(level, id)` order) — so the unaffected part of the
    /// fabric keeps its channel labels. When the old root died, the tree
    /// is rebuilt from the lowest-id surviving switch.
    ///
    /// Dead channels still receive a consistent class (the partition stays
    /// total over base channel ids) but are excluded from extended-
    /// ancestor reachability, so routing built on the new labeling never
    /// plans a route through a shortcut that no longer exists.
    ///
    /// Returns the new labeling plus a [`RelabelReport`] describing how
    /// much of the old structure survived; `None` when no switch is alive.
    pub fn relabel_after(&self, view: &DegradedTopology) -> Option<(Self, RelabelReport)> {
        let topo = view.base();
        assert_eq!(
            topo.num_nodes(),
            self.num_nodes(),
            "relabel_after requires the labeling's own base topology"
        );
        let old_root_ok = view.is_node_alive(self.root);
        let root = if old_root_ok {
            self.root
        } else {
            topo.switches().find(|&s| view.is_node_alive(s))?
        };
        let n = topo.num_nodes();
        let mut parent: Vec<Option<NodeId>> = vec![None; n];
        let mut level = vec![u32::MAX; n];
        let mut labeled = vec![false; n];
        level[root.index()] = 0;
        labeled[root.index()] = true;
        let mut kept_tree_edges = 0usize;
        if old_root_ok {
            // Phase 1: keep every old tree edge still connected to the
            // root through surviving tree edges. Old parent pointers and
            // levels are preserved verbatim for this region.
            let mut q = std::collections::VecDeque::new();
            q.push_back(root);
            while let Some(u) = q.pop_front() {
                for &v in self.tree_children(u) {
                    if labeled[v.index()] || !view.is_node_alive(v) {
                        continue;
                    }
                    let ch = topo.channel_between(u, v).expect("tree edges are links");
                    if !view.is_channel_alive(ch) {
                        continue;
                    }
                    parent[v.index()] = Some(u);
                    level[v.index()] = level[u.index()] + 1;
                    labeled[v.index()] = true;
                    kept_tree_edges += 1;
                    q.push_back(v);
                }
            }
        }
        // Phase 2: reattach orphaned survivors over any surviving channel,
        // shallowest attachment point first. A deterministic (level, id)
        // heap keeps levels consistent (child = parent + 1) without caring
        // that kept levels are no longer BFS-minimal — acyclicity of the
        // up/down subnetworks only needs consistency, not minimality.
        let mut heap: BinaryHeap<Reverse<(u32, NodeId)>> = topo
            .nodes()
            .filter(|v| labeled[v.index()])
            .map(|v| Reverse((level[v.index()], v)))
            .collect();
        let mut reattached = 0usize;
        while let Some(Reverse((lu, u))) = heap.pop() {
            for &c in topo.out_channels(u) {
                if !view.is_channel_alive(c) {
                    continue;
                }
                let v = topo.channel(c).dst;
                if labeled[v.index()] {
                    continue;
                }
                parent[v.index()] = Some(u);
                level[v.index()] = lu + 1;
                labeled[v.index()] = true;
                reattached += 1;
                heap.push(Reverse((lu + 1, v)));
            }
        }
        let labeled_nodes = labeled.iter().filter(|l| **l).count();
        let alive = view.alive_channel_mask();
        let new = Self::assemble(topo, root, parent, level, labeled, Some(&alive));
        let changed_channels = topo
            .channel_ids()
            .filter(|&c| alive[c.index()] && new.class(c) != self.class(c))
            .count();
        let report = RelabelReport {
            root,
            kept_tree_edges,
            reattached_nodes: reattached,
            labeled_nodes,
            changed_channels,
            full_rebuild: !old_root_ok,
        };
        Some((new, report))
    }

    fn build_from_root(topo: &Topology, root: NodeId) -> Self {
        let parent_raw = algo::bfs_parents(topo, root);
        let labeled: Vec<bool> = parent_raw.iter().map(|p| p.is_some()).collect();
        let n = topo.num_nodes();
        let mut parent: Vec<Option<NodeId>> = vec![None; n];
        let mut level = vec![u32::MAX; n];
        level[root.index()] = 0;
        // bfs_parents encodes the root as its own parent; the BFS order
        // contains exactly the root's component.
        let order = bfs_order(topo, root);
        for &v in &order {
            let p = parent_raw[v.index()].unwrap();
            if v != root {
                parent[v.index()] = Some(p);
                level[v.index()] = level[p.index()] + 1;
            }
        }
        Self::assemble(topo, root, parent, level, labeled, None)
    }

    /// Finishes a labeling from a spanning-forest description (parent
    /// pointers + consistent levels): derives the children lists,
    /// classifies every channel, and builds the ancestor / extended-
    /// ancestor matrices. `alive` masks the channels that may carry
    /// traffic: dead channels still receive a (consistent, acyclic) class
    /// so the partition stays total, but they contribute nothing to
    /// extended-ancestor reachability — a relabeled network must never
    /// route towards a down-cross shortcut that no longer exists.
    fn assemble(
        topo: &Topology,
        root: NodeId,
        parent: Vec<Option<NodeId>>,
        level: Vec<u32>,
        labeled: Vec<bool>,
        alive: Option<&[bool]>,
    ) -> Self {
        let n = topo.num_nodes();
        let is_alive = |c: ChannelId| alive.is_none_or(|a| a[c.index()]);
        // Children lists: nodes iterate ascending, so each list is sorted.
        let mut children: Vec<Vec<NodeId>> = vec![Vec::new(); n];
        for v in topo.nodes() {
            if let Some(p) = parent[v.index()] {
                children[p.index()].push(v);
            }
        }

        // Per-channel classification.
        let mut class = Vec::with_capacity(topo.num_channels());
        for c in topo.channel_ids() {
            let ch = topo.channel(c);
            let (u, v) = (ch.src, ch.dst);
            let k = if parent[v.index()] == Some(u) {
                ChannelClass::DownTree
            } else if parent[u.index()] == Some(v) {
                ChannelClass::UpTree
            } else {
                // Cross channel (switch to switch). A BFS cannot leave its
                // component, so either both endpoints are labeled (finite
                // levels) or both are unlabeled (both u32::MAX, falling
                // through to the id tie-break — still one up and one down
                // per link, and still acyclic by strictly increasing id).
                let (lu, lv) = (level[u.index()], level[v.index()]);
                if lv < lu || (lv == lu && u > v) {
                    ChannelClass::UpCross
                } else {
                    ChannelClass::DownCross
                }
            };
            class.push(k);
        }

        // Ancestor matrix: walk each node's ancestor chain. Reflexive.
        let mut anc = BitMatrix::new(n);
        for v in topo.nodes() {
            let mut cur = v;
            anc.set(cur.index(), v.index());
            while let Some(p) = parent[cur.index()] {
                anc.set(p.index(), v.index());
                cur = p;
            }
        }

        // Down-cross reachability DP in reverse (level, id) order — the
        // down-cross digraph is acyclic because every edge strictly
        // increases (level, id) lexicographically.
        let mut by_depth: Vec<NodeId> = topo.nodes().collect();
        by_depth.sort_unstable_by_key(|v| (level[v.index()], *v));
        let mut dc = BitMatrix::new(n);
        for &u in by_depth.iter().rev() {
            dc.set(u.index(), u.index());
            for &c in topo.out_channels(u) {
                if class[c.index()] == ChannelClass::DownCross && is_alive(c) {
                    let w = topo.channel(c).dst;
                    dc.or_row_into(w.index(), u.index());
                }
            }
        }

        // Extended ancestors: u ext-anc v ⇔ some w down-cross-reachable
        // from u is a (tree) ancestor of v. ext[u] = ⋃_{w∈DC(u)} desc[w],
        // and desc[w] is row w of `anc`.
        let mut ext = BitMatrix::new(n);
        for u in topo.nodes() {
            let ws: Vec<usize> = dc.row_ones(u.index()).collect();
            for w in ws {
                // anc row w = descendants of w.
                let (src, dst) = (w, u.index());
                // Borrow juggling: copy via or using a temporary view on anc.
                ext_or_anc_row(&mut ext, &anc, src, dst);
            }
        }

        UpDownLabeling {
            root,
            parent,
            level,
            labeled,
            class,
            children,
            anc,
            ext,
        }
    }

    /// The spanning-tree root switch.
    #[inline]
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Tree parent of `v` (`None` for the root).
    #[inline]
    pub fn parent(&self, v: NodeId) -> Option<NodeId> {
        self.parent[v.index()]
    }

    /// Tree depth of `v` (root = 0). `u32::MAX` for nodes outside a
    /// partial labeling's component.
    #[inline]
    pub fn level(&self, v: NodeId) -> u32 {
        self.level[v.index()]
    }

    /// True when `v` belongs to the labeled component. Always true for
    /// labelings from [`Self::build`]; partial labelings
    /// ([`Self::build_partial`]) answer ancestor/LCA queries only for
    /// labeled nodes.
    #[inline]
    pub fn is_labeled(&self, v: NodeId) -> bool {
        self.labeled[v.index()]
    }

    /// Number of nodes in the labeled component.
    pub fn num_labeled(&self) -> usize {
        self.labeled.iter().filter(|l| **l).count()
    }

    /// Tree children of `v`, ascending by id.
    #[inline]
    pub fn tree_children(&self, v: NodeId) -> &[NodeId] {
        &self.children[v.index()]
    }

    /// Class of channel `c`.
    #[inline]
    pub fn class(&self, c: ChannelId) -> ChannelClass {
        self.class[c.index()]
    }

    /// Definition 1: `u` is an **ancestor** of `v` — a (possibly empty)
    /// down-tree path leads from `u` to `v`. Reflexive.
    #[inline]
    pub fn is_ancestor(&self, u: NodeId, v: NodeId) -> bool {
        self.anc.get(u.index(), v.index())
    }

    /// Definition 1: `u` is an **extended ancestor** of `v` — zero or more
    /// down-cross channels followed by zero or more down-tree channels lead
    /// from `u` to `v`. Reflexive; implied by [`Self::is_ancestor`].
    #[inline]
    pub fn is_extended_ancestor(&self, u: NodeId, v: NodeId) -> bool {
        self.ext.get(u.index(), v.index())
    }

    /// Least common ancestor of `a` and `b` in the spanning tree.
    ///
    /// # Panics
    ///
    /// Panics if either node is outside a partial labeling's component
    /// (there is no common tree). Use [`Self::lca_of`] for a total
    /// variant.
    pub fn lca(&self, a: NodeId, b: NodeId) -> NodeId {
        let (mut x, mut y) = (a, b);
        while self.level[x.index()] > self.level[y.index()] {
            x = self.parent[x.index()].expect("non-root has a parent");
        }
        while self.level[y.index()] > self.level[x.index()] {
            y = self.parent[y.index()].expect("non-root has a parent");
        }
        while x != y {
            x = self.parent[x.index()].expect("walk meets at the root");
            y = self.parent[y.index()].expect("walk meets at the root");
        }
        x
    }

    /// Least common ancestor of a set of nodes; `None` for the empty set
    /// **or when any node lies outside the labeled component** (a partial
    /// labeling has no tree covering it, so no LCA exists).
    ///
    /// For a single destination this is the destination itself, which is
    /// exactly why "the multicast algorithm simply reduces to the unicast
    /// algorithm" (§3.2).
    pub fn lca_of(&self, nodes: &[NodeId]) -> Option<NodeId> {
        if !nodes.iter().all(|&n| self.is_labeled(n)) {
            return None;
        }
        let mut it = nodes.iter();
        let first = *it.next()?;
        Some(it.fold(first, |acc, &n| self.lca(acc, n)))
    }

    /// The tree child of `n` whose subtree contains `dest`, if any. This is
    /// the branch a multicast worm must take at `n` for `dest`.
    pub fn child_towards(&self, n: NodeId, dest: NodeId) -> Option<NodeId> {
        self.children[n.index()]
            .iter()
            .copied()
            .find(|&c| self.is_ancestor(c, dest))
    }

    /// Number of nodes in the labeling.
    pub fn num_nodes(&self) -> usize {
        self.parent.len()
    }

    /// Iterator over `(ChannelId, ChannelClass)` pairs.
    pub fn classes(&self) -> impl Iterator<Item = (ChannelId, ChannelClass)> + '_ {
        self.class
            .iter()
            .enumerate()
            .map(|(i, k)| (ChannelId(i as u32), *k))
    }

    /// Count of channels per class `(up_tree, up_cross, down_tree,
    /// down_cross)` — handy for topology statistics and tests.
    pub fn class_counts(&self) -> (usize, usize, usize, usize) {
        let mut counts = (0, 0, 0, 0);
        for k in &self.class {
            match k {
                ChannelClass::UpTree => counts.0 += 1,
                ChannelClass::UpCross => counts.1 += 1,
                ChannelClass::DownTree => counts.2 += 1,
                ChannelClass::DownCross => counts.3 += 1,
            }
        }
        counts
    }
}

/// `ext[dst_row] |= anc[src_row]` across two different matrices.
fn ext_or_anc_row(ext: &mut BitMatrix, anc: &BitMatrix, src_row: usize, dst_row: usize) {
    // BitMatrix doesn't expose raw words; emulate with an iterator. The
    // construction is one-time per labeling, so clarity wins here.
    for col in anc.row_ones(src_row) {
        ext.set(dst_row, col);
    }
}

/// BFS visit order (deterministic: neighbors ascending by id).
fn bfs_order(topo: &Topology, root: NodeId) -> Vec<NodeId> {
    let mut seen = vec![false; topo.num_nodes()];
    let mut order = Vec::with_capacity(topo.num_nodes());
    let mut q = std::collections::VecDeque::new();
    seen[root.index()] = true;
    q.push_back(root);
    while let Some(u) = q.pop_front() {
        order.push(u);
        for v in topo.neighbors(u) {
            if !seen[v.index()] {
                seen[v.index()] = true;
                q.push_back(v);
            }
        }
    }
    order
}

fn resolve_root(topo: &Topology, sel: RootSelection) -> NodeId {
    match sel {
        RootSelection::Fixed(n) => n,
        RootSelection::LowestId => topo.switches().next().expect("topology has a switch"),
        RootSelection::MaxDegree => algo::max_degree_switch(topo).expect("topology has a switch"),
        RootSelection::MinEccentricity => {
            algo::min_eccentricity_switch(topo).expect("topology has a switch")
        }
        RootSelection::RandomSeeded(seed) => {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            topo.switches()
                .choose(&mut rng)
                .expect("topology has a switch")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netgraph::gen::fixtures::figure1;
    use netgraph::gen::regular::mesh2d;

    fn fig1() -> (
        Topology,
        netgraph::gen::fixtures::Figure1Labels,
        UpDownLabeling,
    ) {
        let (t, l) = figure1();
        let root = l.by_label(1).unwrap();
        let ud = UpDownLabeling::build(&t, RootSelection::Fixed(root));
        (t, l, ud)
    }

    #[test]
    fn figure1_tree_structure() {
        let (_, l, ud) = fig1();
        let by = |x| l.by_label(x).unwrap();
        assert_eq!(ud.root(), by(1));
        assert_eq!(ud.parent(by(1)), None);
        assert_eq!(ud.parent(by(4)), Some(by(2)));
        assert_eq!(ud.level(by(1)), 0);
        assert_eq!(ud.level(by(4)), 2);
        assert_eq!(ud.level(by(8)), 4);
        assert_eq!(ud.tree_children(by(4)), &[by(6), by(7)]);
        assert_eq!(ud.tree_children(by(6)), &[by(8), by(9), by(10)]);
    }

    #[test]
    fn figure1_channel_classes() {
        let (t, l, ud) = fig1();
        let by = |x| l.by_label(x).unwrap();
        let class_of = |a: u32, b: u32| {
            let c = t.channel_between(by(a), by(b)).unwrap();
            ud.class(c)
        };
        // Tree channels.
        assert_eq!(class_of(1, 2), ChannelClass::DownTree);
        assert_eq!(class_of(2, 1), ChannelClass::UpTree);
        assert_eq!(class_of(4, 6), ChannelClass::DownTree);
        assert_eq!(class_of(5, 2), ChannelClass::UpTree); // processor up-link
        assert_eq!(class_of(6, 8), ChannelClass::DownTree);
        // Cross channel between same-level switches 2 and 3: down from the
        // smaller id to the larger (the paper's tie-break).
        assert_eq!(class_of(2, 3), ChannelClass::DownCross);
        assert_eq!(class_of(3, 2), ChannelClass::UpCross);
        // Cross channel from level 1 (node 3) to level 2 (node 4): down.
        assert_eq!(class_of(3, 4), ChannelClass::DownCross);
        assert_eq!(class_of(4, 3), ChannelClass::UpCross);
    }

    #[test]
    fn figure1_ancestors_and_extended_ancestors() {
        let (_, l, ud) = fig1();
        let by = |x| l.by_label(x).unwrap();
        // Plain ancestors.
        assert!(ud.is_ancestor(by(1), by(8)));
        assert!(ud.is_ancestor(by(4), by(11)));
        assert!(ud.is_ancestor(by(6), by(9)));
        assert!(!ud.is_ancestor(by(6), by(11)));
        assert!(!ud.is_ancestor(by(3), by(8)), "3 is not a tree ancestor");
        assert!(ud.is_ancestor(by(4), by(4)), "reflexive");
        // Every ancestor is an extended ancestor.
        assert!(ud.is_extended_ancestor(by(4), by(11)));
        // 3 reaches 4 by a down-cross channel, hence ext-ancestor of the
        // whole subtree under 4 — this is what legalizes the path 5,2,3,4.
        assert!(ud.is_extended_ancestor(by(3), by(4)));
        assert!(ud.is_extended_ancestor(by(3), by(8)));
        assert!(ud.is_extended_ancestor(by(3), by(11)));
        // 2 reaches 3 by a down-cross channel, then 3 reaches 4.
        assert!(ud.is_extended_ancestor(by(2), by(8)));
        // But 6 can never reach 11.
        assert!(!ud.is_extended_ancestor(by(6), by(11)));
        // 7 is not an extended ancestor of 8.
        assert!(!ud.is_extended_ancestor(by(7), by(8)));
    }

    #[test]
    fn figure1_lca_matches_paper_example() {
        let (_, l, ud) = fig1();
        let by = |x| l.by_label(x).unwrap();
        let dests = [by(8), by(9), by(10), by(11)];
        assert_eq!(ud.lca_of(&dests), Some(by(4)));
        assert_eq!(ud.lca_of(&[by(8), by(9)]), Some(by(6)));
        assert_eq!(ud.lca_of(&[by(8)]), Some(by(8)), "singleton LCA is itself");
        assert_eq!(ud.lca_of(&[]), None);
        assert_eq!(ud.lca(by(5), by(11)), by(2));
        assert_eq!(ud.lca(by(1), by(10)), by(1));
    }

    #[test]
    fn child_towards_picks_correct_branch() {
        let (_, l, ud) = fig1();
        let by = |x| l.by_label(x).unwrap();
        assert_eq!(ud.child_towards(by(4), by(9)), Some(by(6)));
        assert_eq!(ud.child_towards(by(4), by(11)), Some(by(7)));
        assert_eq!(ud.child_towards(by(6), by(11)), None);
        assert_eq!(ud.child_towards(by(1), by(8)), Some(by(2)));
    }

    #[test]
    fn class_counts_partition_all_channels() {
        let (t, _, ud) = fig1();
        let (ut, uc, dt, dc) = ud.class_counts();
        assert_eq!(ut + uc + dt + dc, t.num_channels());
        assert_eq!(ut, dt, "tree channels pair up");
        assert_eq!(uc, dc, "cross channels pair up");
        assert_eq!(dt, 10, "ten tree links in Figure 1");
        assert_eq!(dc, 2, "two cross links in Figure 1");
    }

    #[test]
    fn up_and_down_are_mutually_reverse() {
        let t = mesh2d(4, 4);
        let ud = UpDownLabeling::build(&t, RootSelection::LowestId);
        for c in t.channel_ids() {
            let r = t.reverse(c);
            assert_eq!(
                ud.class(c).is_up(),
                ud.class(r).is_down(),
                "each link has one up and one down direction"
            );
        }
    }

    #[test]
    fn root_selection_policies() {
        let t = mesh2d(3, 5);
        let ud = UpDownLabeling::build(&t, RootSelection::MinEccentricity);
        // Center of a 3x5 mesh is switch (1,2) = id 7.
        assert_eq!(ud.root(), NodeId(7));
        let ud2 = UpDownLabeling::build(&t, RootSelection::LowestId);
        assert_eq!(ud2.root(), NodeId(0));
        let ud3 = UpDownLabeling::build(&t, RootSelection::RandomSeeded(3));
        assert!(t.is_switch(ud3.root()));
        let ud4 = UpDownLabeling::build(&t, RootSelection::MaxDegree);
        assert!(t.degree(ud4.root()) >= 3);
    }

    #[test]
    fn partial_labeling_covers_exactly_the_root_component() {
        // Two islands: s0-s1 (p4@s0, p5@s1) and s2-s3 (p6@s3).
        let mut b = Topology::builder();
        let s: Vec<NodeId> = (0..4).map(|_| b.add_switch()).collect();
        let p4 = b.add_processor();
        let p5 = b.add_processor();
        let p6 = b.add_processor();
        b.link(s[0], s[1]).unwrap();
        b.link(s[2], s[3]).unwrap();
        b.link(p4, s[0]).unwrap();
        b.link(p5, s[1]).unwrap();
        b.link(p6, s[3]).unwrap();
        let t = b.build();

        let ud = UpDownLabeling::build_partial(&t, s[0]);
        assert_eq!(ud.root(), s[0]);
        assert_eq!(ud.num_labeled(), 4);
        for n in [s[0], s[1], p4, p5] {
            assert!(ud.is_labeled(n));
        }
        for n in [s[2], s[3], p6] {
            assert!(!ud.is_labeled(n));
            assert_eq!(ud.level(n), u32::MAX);
            assert_eq!(ud.parent(n), None);
        }
        assert_eq!(ud.level(s[1]), 1);
        assert_eq!(ud.lca(p4, p5), s[0]);
        assert!(ud.is_ancestor(s[0], p5));
        // Every channel — labeled component or not — gets one up and one
        // down direction.
        for c in t.channel_ids() {
            assert_ne!(ud.class(c).is_up(), ud.class(t.reverse(c)).is_up());
        }
        // The other island is labeled by its own root.
        let ud2 = UpDownLabeling::build_partial(&t, s[3]);
        assert_eq!(ud2.num_labeled(), 3);
        assert!(ud2.is_labeled(p6));
        assert!(!ud2.is_labeled(p4));
        assert_eq!(ud2.lca(s[2], p6), s[3]);
    }

    #[test]
    fn relabel_after_pristine_view_is_identity() {
        let t = netgraph::gen::lattice::IrregularConfig::with_switches(32).generate(7);
        let ud = UpDownLabeling::build(&t, RootSelection::LowestId);
        let view = DegradedTopology::new(&t);
        let (nu, rep) = ud.relabel_after(&view).unwrap();
        assert_eq!(rep.root, ud.root());
        assert_eq!(rep.changed_channels, 0);
        assert_eq!(rep.reattached_nodes, 0);
        assert_eq!(rep.kept_tree_edges, t.num_nodes() - 1);
        assert_eq!(rep.labeled_nodes, t.num_nodes());
        assert!(!rep.full_rebuild);
        for c in t.channel_ids() {
            assert_eq!(nu.class(c), ud.class(c));
        }
        for v in t.nodes() {
            assert_eq!(nu.parent(v), ud.parent(v));
            assert_eq!(nu.level(v), ud.level(v));
        }
    }

    #[test]
    fn relabel_after_cross_link_death_keeps_the_tree() {
        let (t, l) = figure1();
        let root = l.by_label(1).unwrap();
        let ud = UpDownLabeling::build(&t, RootSelection::Fixed(root));
        // (3,4) is a cross link in the Figure 1 labeling: killing it must
        // not move a single parent pointer.
        let mut view = DegradedTopology::new(&t);
        view.kill_link(
            t.channel_between(l.by_label(3).unwrap(), l.by_label(4).unwrap())
                .unwrap(),
        );
        let (nu, rep) = ud.relabel_after(&view).unwrap();
        assert_eq!(rep.reattached_nodes, 0);
        assert_eq!(rep.kept_tree_edges, t.num_nodes() - 1);
        assert_eq!(rep.changed_channels, 0, "no live channel changed class");
        for v in t.nodes() {
            assert_eq!(nu.parent(v), ud.parent(v));
        }
        // The dead shortcut no longer grants extended ancestry: 3 could
        // reach 4's subtree only through the dead (3,4) channel.
        assert!(ud.is_extended_ancestor(l.by_label(3).unwrap(), l.by_label(8).unwrap()));
        assert!(!nu.is_extended_ancestor(l.by_label(3).unwrap(), l.by_label(8).unwrap()));
    }

    #[test]
    fn relabel_after_tree_link_death_reattaches_the_subtree() {
        let (t, l) = figure1();
        let by = |x: u32| l.by_label(x).unwrap();
        let ud = UpDownLabeling::build(&t, RootSelection::Fixed(by(1)));
        // Kill the tree edge (2,4): node 4's subtree must reattach through
        // the surviving cross link (3,4).
        let mut view = DegradedTopology::new(&t);
        view.kill_link(t.channel_between(by(2), by(4)).unwrap());
        let (nu, rep) = ud.relabel_after(&view).unwrap();
        assert_eq!(rep.root, by(1));
        assert!(!rep.full_rebuild);
        assert_eq!(
            nu.parent(by(4)),
            Some(by(3)),
            "reattached via the cross link"
        );
        assert!(rep.reattached_nodes >= 1);
        assert!(rep.changed_channels >= 2, "the adopted link changed class");
        assert_eq!(rep.labeled_nodes, t.num_nodes(), "nothing disconnected");
        // Untouched subtree structure is preserved.
        assert_eq!(nu.parent(by(6)), ud.parent(by(6)));
        assert_eq!(nu.parent(by(8)), ud.parent(by(8)));
        // The result is still a valid labeling.
        assert!(crate::validate::check_acyclic_subnetworks(&t, &nu).all_ok());
        assert!(nu.is_ancestor(by(3), by(8)), "3 adopted 4's subtree");
        assert_eq!(nu.lca(by(8), by(11)), by(4));
    }

    #[test]
    fn relabel_after_dead_root_rebuilds() {
        let t = netgraph::gen::lattice::IrregularConfig::with_switches(24).generate(3);
        let ud = UpDownLabeling::build(&t, RootSelection::LowestId);
        let mut view = DegradedTopology::new(&t);
        view.kill_switch(ud.root());
        let (nu, rep) = ud.relabel_after(&view).unwrap();
        assert!(rep.full_rebuild);
        assert_ne!(rep.root, ud.root());
        assert_eq!(rep.kept_tree_edges, 0);
        assert!(t.is_switch(rep.root));
        assert!(!nu.is_labeled(ud.root()));
        assert!(crate::validate::check_acyclic_subnetworks(&t, &nu).all_ok());
    }

    #[test]
    fn relabel_after_returns_none_when_no_switch_survives() {
        let (t, _) = figure1();
        let mut view = DegradedTopology::new(&t);
        for s in t.switches() {
            view.kill_switch(s);
        }
        let ud = UpDownLabeling::build(&t, RootSelection::LowestId);
        assert!(ud.relabel_after(&view).is_none());
    }

    #[test]
    fn relabel_chain_stays_consistent() {
        // Chained incremental relabels (the live-reconfiguration regime):
        // each epoch relabels the previous epoch's labeling.
        let t = netgraph::gen::lattice::IrregularConfig::with_switches(32).generate(11);
        let mut ud = UpDownLabeling::build(&t, RootSelection::LowestId);
        let mut view = DegradedTopology::new(&t);
        for (i, c) in t.channel_ids().step_by(2).enumerate() {
            if i % 7 == 0 {
                view.kill_link(c);
            }
        }
        for _ in 0..3 {
            let (nu, rep) = ud.relabel_after(&view).unwrap();
            assert!(rep.labeled_nodes > 0);
            assert!(crate::validate::check_acyclic_subnetworks(&t, &nu).all_ok());
            // Per-link direction pairing holds over every base channel.
            for c in t.channel_ids() {
                assert_ne!(nu.class(c).is_up(), nu.class(t.reverse(c)).is_up());
            }
            ud = nu;
        }
    }

    #[test]
    #[should_panic(expected = "must be a switch")]
    fn processor_root_rejected() {
        let (t, l) = figure1();
        UpDownLabeling::build(&t, RootSelection::Fixed(l.by_label(5).unwrap()));
    }

    #[test]
    fn processors_are_leaves_with_tree_links_only() {
        let t = mesh2d(3, 3);
        let ud = UpDownLabeling::build(&t, RootSelection::LowestId);
        for p in t.processors() {
            assert!(ud.tree_children(p).is_empty());
            for &c in t.out_channels(p) {
                assert_eq!(ud.class(c), ChannelClass::UpTree);
            }
            for &c in t.in_channels(p) {
                assert_eq!(ud.class(c), ChannelClass::DownTree);
            }
        }
    }

    #[test]
    fn lca_is_ancestor_of_all_inputs() {
        let t = netgraph::gen::lattice::IrregularConfig::with_switches(32).generate(9);
        let ud = UpDownLabeling::build(&t, RootSelection::LowestId);
        let procs: Vec<NodeId> = t.processors().take(6).collect();
        let lca = ud.lca_of(&procs).unwrap();
        for &p in &procs {
            assert!(ud.is_ancestor(lca, p));
        }
        // And it is the *least* such: no child of the LCA covers all.
        for &c in ud.tree_children(lca) {
            assert!(!procs.iter().all(|&p| ud.is_ancestor(c, p)));
        }
    }
}
