#![warn(missing_docs)]

//! # updown — up*/down* spanning-tree machinery for irregular networks
//!
//! SPAM (§3.1 of the paper) partitions the network "in a fashion similar to
//! that used in the up*/down* routing algorithm proposed by Schroeder et
//! al." (Autonet): pick a root switch, build a spanning tree, and orient
//! every unidirectional channel as *up* (towards the root) or *down* (away
//! from it). Unlike classic up*/down*, SPAM additionally distinguishes
//! **down tree** channels from **down cross** channels — the distinction
//! that makes deadlock-free tree-based multicast possible.
//!
//! This crate owns everything that is a pure function of (topology, root):
//!
//! * [`UpDownLabeling`] — BFS spanning tree, levels, and the per-channel
//!   [`ChannelClass`] assignment, including the paper's id-based tie-break
//!   for cross channels between same-level switches;
//! * the **ancestor** and **extended ancestor** relations of Definition 1,
//!   precomputed as bit matrices for O(1) routing-time queries;
//! * least-common-ancestor queries over arbitrary destination sets (the
//!   multicast split point);
//! * structural sanity checks used by the deadlock-freedom property tests
//!   (the up-channel and down-channel digraphs must be acyclic).
//!
//! ```
//! use netgraph::gen::fixtures::figure1;
//! use updown::{ChannelClass, RootSelection, UpDownLabeling};
//!
//! let (topo, labels) = figure1();
//! let by = |l| labels.by_label(l).unwrap();
//! let ud = UpDownLabeling::build(&topo, RootSelection::Fixed(by(1)));
//!
//! // The example multicast of §3.2: LCA of {8, 9, 10, 11} is node 4.
//! let dests = [by(8), by(9), by(10), by(11)];
//! assert_eq!(ud.lca_of(&dests), Some(by(4)));
//!
//! // (3,4) is a down cross channel; (4,6) is a down tree channel.
//! let c34 = topo.channel_between(by(3), by(4)).unwrap();
//! let c46 = topo.channel_between(by(4), by(6)).unwrap();
//! assert_eq!(ud.class(c34), ChannelClass::DownCross);
//! assert_eq!(ud.class(c46), ChannelClass::DownTree);
//! ```

mod bitmat;
pub mod labeling;
pub mod validate;

pub use bitmat::BitMatrix;
pub use labeling::{ChannelClass, RelabelReport, RootSelection, UpDownLabeling};
pub use validate::{check_acyclic_subnetworks, AcyclicityReport};
