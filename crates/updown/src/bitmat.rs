//! A dense square bit matrix used for the ancestor / extended-ancestor
//! relations. Row `u` is the set of nodes standing in the relation with `u`
//! (e.g. "all nodes that `u` can down-cross-reach").
//!
//! Networks in the paper top out at a few hundred nodes, so the full matrix
//! is a few tens of kilobytes — precomputing beats per-query graph walks by
//! orders of magnitude in the routing hot path.

/// Dense `n × n` bit matrix with `u64` words.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitMatrix {
    n: usize,
    words_per_row: usize,
    bits: Vec<u64>,
}

impl BitMatrix {
    /// All-zero `n × n` matrix.
    pub fn new(n: usize) -> Self {
        let words_per_row = n.div_ceil(64);
        BitMatrix {
            n,
            words_per_row,
            bits: vec![0; n * words_per_row],
        }
    }

    /// Side length.
    #[inline]
    pub fn size(&self) -> usize {
        self.n
    }

    /// Sets bit `(row, col)`.
    #[inline]
    pub fn set(&mut self, row: usize, col: usize) {
        debug_assert!(row < self.n && col < self.n);
        self.bits[row * self.words_per_row + col / 64] |= 1u64 << (col % 64);
    }

    /// Reads bit `(row, col)`.
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> bool {
        debug_assert!(row < self.n && col < self.n);
        self.bits[row * self.words_per_row + col / 64] & (1u64 << (col % 64)) != 0
    }

    /// ORs row `src` into row `dst` (`dst |= src`); the transitive-closure
    /// work-horse. No-op when `dst == src`.
    pub fn or_row_into(&mut self, src: usize, dst: usize) {
        if src == dst {
            return;
        }
        debug_assert!(src < self.n && dst < self.n);
        let w = self.words_per_row;
        let (a, b) = (src * w, dst * w);
        // Split-borrow the two disjoint rows.
        if a < b {
            let (lo, hi) = self.bits.split_at_mut(b);
            for (d, s) in hi[..w].iter_mut().zip(&lo[a..a + w]) {
                *d |= *s;
            }
        } else {
            let (lo, hi) = self.bits.split_at_mut(a);
            for (s, d) in hi[..w].iter().zip(&mut lo[b..b + w]) {
                *d |= *s;
            }
        }
    }

    /// Iterates over the set column indices of `row`, ascending.
    pub fn row_ones(&self, row: usize) -> impl Iterator<Item = usize> + '_ {
        debug_assert!(row < self.n);
        let w = self.words_per_row;
        let words = &self.bits[row * w..(row + 1) * w];
        words.iter().enumerate().flat_map(move |(wi, &word)| {
            let mut rem = word;
            std::iter::from_fn(move || {
                if rem == 0 {
                    None
                } else {
                    let bit = rem.trailing_zeros() as usize;
                    rem &= rem - 1;
                    Some(wi * 64 + bit)
                }
            })
        })
    }

    /// Number of set bits in `row`.
    pub fn row_count(&self, row: usize) -> usize {
        let w = self.words_per_row;
        self.bits[row * w..(row + 1) * w]
            .iter()
            .map(|x| x.count_ones() as usize)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_round_trip() {
        let mut m = BitMatrix::new(130); // spans 3 words per row
        assert!(!m.get(0, 0));
        m.set(0, 0);
        m.set(5, 64);
        m.set(129, 129);
        assert!(m.get(0, 0));
        assert!(m.get(5, 64));
        assert!(m.get(129, 129));
        assert!(!m.get(5, 65));
        assert_eq!(m.size(), 130);
    }

    #[test]
    fn or_row_into_merges() {
        let mut m = BitMatrix::new(70);
        m.set(1, 3);
        m.set(1, 69);
        m.set(2, 10);
        m.or_row_into(1, 2);
        assert!(m.get(2, 3) && m.get(2, 69) && m.get(2, 10));
        assert!(!m.get(1, 10), "source row untouched");
        // dst < src direction
        m.or_row_into(2, 0);
        assert!(m.get(0, 3) && m.get(0, 10));
        // self-merge is a no-op
        let before = m.clone();
        m.or_row_into(2, 2);
        assert_eq!(m, before);
    }

    #[test]
    fn row_ones_ascending_and_counted() {
        let mut m = BitMatrix::new(200);
        for c in [0usize, 63, 64, 127, 128, 199] {
            m.set(7, c);
        }
        let ones: Vec<usize> = m.row_ones(7).collect();
        assert_eq!(ones, vec![0, 63, 64, 127, 128, 199]);
        assert_eq!(m.row_count(7), 6);
        assert_eq!(m.row_count(8), 0);
    }

    #[test]
    fn empty_matrix() {
        let m = BitMatrix::new(0);
        assert_eq!(m.size(), 0);
    }
}
