//! Structural validation of a labeling — the acyclicity facts the SPAM
//! deadlock-freedom argument rests on.
//!
//! The up-channel digraph must be acyclic (every up channel strictly
//! decreases the (level, id) key towards the root) and likewise the
//! down-channel digraph; a cycle in either would break the channel-ordering
//! argument of the paper's Theorem 1. These checks run in the property-test
//! suite over thousands of random topologies.

use crate::labeling::UpDownLabeling;
use netgraph::{NodeId, Topology};

/// Result of [`check_acyclic_subnetworks`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AcyclicityReport {
    /// The up-channel digraph is acyclic.
    pub up_acyclic: bool,
    /// The down-channel digraph is acyclic.
    pub down_acyclic: bool,
    /// The down-*cross* digraph alone is acyclic (needed for the extended
    /// ancestor DP and the down-cross-then-down-tree ordering).
    pub down_cross_acyclic: bool,
}

impl AcyclicityReport {
    /// All three subnetworks acyclic.
    pub fn all_ok(&self) -> bool {
        self.up_acyclic && self.down_acyclic && self.down_cross_acyclic
    }
}

/// Checks the three acyclicity invariants via Kahn's algorithm on each
/// channel-class-induced digraph.
pub fn check_acyclic_subnetworks(topo: &Topology, ud: &UpDownLabeling) -> AcyclicityReport {
    let up = |c: netgraph::ChannelId| ud.class(c).is_up();
    let down = |c: netgraph::ChannelId| ud.class(c).is_down();
    let down_cross =
        |c: netgraph::ChannelId| ud.class(c) == crate::labeling::ChannelClass::DownCross;
    AcyclicityReport {
        up_acyclic: is_acyclic(topo, up),
        down_acyclic: is_acyclic(topo, down),
        down_cross_acyclic: is_acyclic(topo, down_cross),
    }
}

/// Kahn's algorithm over the sub-digraph of channels where `keep(c)`.
fn is_acyclic(topo: &Topology, keep: impl Fn(netgraph::ChannelId) -> bool) -> bool {
    let n = topo.num_nodes();
    let mut indeg = vec![0usize; n];
    for c in topo.channel_ids() {
        if keep(c) {
            indeg[topo.channel(c).dst.index()] += 1;
        }
    }
    let mut queue: Vec<NodeId> = topo.nodes().filter(|v| indeg[v.index()] == 0).collect();
    let mut removed = 0usize;
    while let Some(u) = queue.pop() {
        removed += 1;
        for &c in topo.out_channels(u) {
            if keep(c) {
                let v = topo.channel(c).dst;
                indeg[v.index()] -= 1;
                if indeg[v.index()] == 0 {
                    queue.push(v);
                }
            }
        }
    }
    removed == n
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::labeling::RootSelection;
    use netgraph::gen::fixtures::figure1;
    use netgraph::gen::lattice::IrregularConfig;
    use netgraph::gen::regular::{hypercube, torus2d};

    #[test]
    fn figure1_subnetworks_acyclic() {
        let (t, l) = figure1();
        let ud = UpDownLabeling::build(&t, RootSelection::Fixed(l.by_label(1).unwrap()));
        let rep = check_acyclic_subnetworks(&t, &ud);
        assert!(rep.all_ok(), "{rep:?}");
    }

    #[test]
    fn random_irregular_subnetworks_acyclic() {
        for seed in 0..20 {
            let t = IrregularConfig::with_switches(48).generate(seed);
            let ud = UpDownLabeling::build(&t, RootSelection::LowestId);
            assert!(check_acyclic_subnetworks(&t, &ud).all_ok(), "seed {seed}");
        }
    }

    #[test]
    fn regular_topologies_acyclic_with_various_roots() {
        for topo in [torus2d(4, 4), hypercube(4)] {
            for sel in [
                RootSelection::LowestId,
                RootSelection::MaxDegree,
                RootSelection::MinEccentricity,
                RootSelection::RandomSeeded(11),
            ] {
                let ud = UpDownLabeling::build(&topo, sel);
                assert!(check_acyclic_subnetworks(&topo, &ud).all_ok());
            }
        }
    }

    #[test]
    fn detects_cycles_in_arbitrary_subgraph() {
        // Sanity-check the Kahn helper itself using an "everything" filter:
        // the full channel digraph of any bidirectional network is cyclic
        // (u→v and v→u), so is_acyclic must be false.
        let (t, _) = figure1();
        assert!(!is_acyclic(&t, |_| true));
        // And the empty sub-digraph is trivially acyclic.
        assert!(is_acyclic(&t, |_| false));
    }
}
