#![warn(missing_docs)]

//! # spam-collections — allocation-lean containers for the simulator hot path
//!
//! The build environment has no access to crates.io, so the workspace rolls
//! its own minimal equivalents of `smallvec` and `slab`/`slotmap`:
//!
//! * [`InlineVec`] — a small-vector for `Copy` element types that stores up
//!   to `N` elements inline and spills to the heap only beyond that. Worm
//!   segments request a handful of output channels (one for a unicast hop,
//!   one per destination subtree at a branch router), so `N` chosen near the
//!   switch port count makes the heap path effectively unreachable.
//! * [`Slab`] — a generation-indexed slot map. Removing a value bumps the
//!   slot's generation, so a stale [`SlotId`] held elsewhere (an old bubble
//!   candidate, a queue entry for a released segment) can never alias a new
//!   occupant: lookups through stale ids simply return `None`. Every
//!   operation is an array index — this is what replaces the engine's
//!   per-event `HashMap` probes.
//!
//! Both types are deterministic: iteration orders depend only on the
//! sequence of operations, never on hashing or addresses.

pub mod inline_vec;
pub mod slab;

pub use inline_vec::InlineVec;
pub use slab::{Slab, SlotId};
