//! A small-vector for `Copy` types: inline storage up to `N`, heap spill
//! beyond.

use std::fmt;
use std::ops::{Deref, DerefMut, Index, IndexMut};

/// A growable vector that stores up to `N` elements inline (no heap
/// allocation) and moves everything to a heap `Vec` only when it grows past
/// `N`.
///
/// Element types must be `Copy + Default`: the inline buffer is a plain
/// `[T; N]` initialized with defaults, which keeps the implementation free
/// of `unsafe` while staying a straight memcpy on clone. All elements are
/// always contiguous — either entirely inline or entirely spilled — so
/// [`Self::as_slice`] is always cheap.
#[derive(Clone)]
pub struct InlineVec<T: Copy + Default, const N: usize> {
    /// Total element count. Elements live in `inline[..len]` when
    /// `len <= N` **and** `spill` is empty; otherwise all in `spill`.
    len: usize,
    inline: [T; N],
    spill: Vec<T>,
}

impl<T: Copy + Default, const N: usize> InlineVec<T, N> {
    /// Creates an empty vector (no heap allocation).
    #[inline]
    pub fn new() -> Self {
        InlineVec {
            len: 0,
            inline: [T::default(); N],
            spill: Vec::new(),
        }
    }

    /// True while the elements live in the inline buffer.
    #[inline]
    fn is_inline(&self) -> bool {
        self.spill.is_empty()
    }

    /// Number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Appends an element, spilling to the heap on overflow of the inline
    /// buffer.
    pub fn push(&mut self, value: T) {
        if self.is_inline() {
            if self.len < N {
                self.inline[self.len] = value;
                self.len += 1;
                return;
            }
            // Overflow: move the inline prefix to the heap in one shot.
            self.spill.reserve(N * 2);
            self.spill.extend_from_slice(&self.inline[..self.len]);
        }
        self.spill.push(value);
        self.len += 1;
    }

    /// Removes and returns the last element.
    pub fn pop(&mut self) -> Option<T> {
        if self.len == 0 {
            return None;
        }
        self.len -= 1;
        if self.is_inline() {
            Some(self.inline[self.len])
        } else {
            self.spill.pop()
        }
    }

    /// Removes the element at `index` by swapping the last element into its
    /// place (O(1), order not preserved).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    pub fn swap_remove(&mut self, index: usize) -> T {
        assert!(
            index < self.len,
            "swap_remove index {index} >= {}",
            self.len
        );
        let last = self.len - 1;
        if self.is_inline() {
            let v = self.inline[index];
            self.inline[index] = self.inline[last];
            self.len = last;
            v
        } else {
            self.len = last;
            self.spill.swap_remove(index)
        }
    }

    /// Clears the vector. Spill capacity is retained, so a container that
    /// spilled once never reallocates for the same size again.
    #[inline]
    pub fn clear(&mut self) {
        self.len = 0;
        self.spill.clear();
    }

    /// The elements as one contiguous slice.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        if self.is_inline() {
            &self.inline[..self.len]
        } else {
            &self.spill
        }
    }

    /// The elements as one contiguous mutable slice.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        if self.is_inline() {
            &mut self.inline[..self.len]
        } else {
            &mut self.spill
        }
    }

    /// Iterates over the elements.
    #[inline]
    pub fn iter(&self) -> std::slice::Iter<'_, T> {
        self.as_slice().iter()
    }

    /// True when `value` is among the elements.
    #[inline]
    pub fn contains(&self, value: &T) -> bool
    where
        T: PartialEq,
    {
        self.as_slice().contains(value)
    }

    /// Copies the elements into a fresh `Vec` (for cold paths like traces).
    #[inline]
    pub fn to_vec(&self) -> Vec<T> {
        self.as_slice().to_vec()
    }

    /// Builds from a slice (spills if `slice.len() > N`).
    pub fn from_slice(slice: &[T]) -> Self {
        let mut v = Self::new();
        for &x in slice {
            v.push(x);
        }
        v
    }
}

impl<T: Copy + Default, const N: usize> Default for InlineVec<T, N> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Copy + Default, const N: usize> Deref for InlineVec<T, N> {
    type Target = [T];
    #[inline]
    fn deref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<T: Copy + Default, const N: usize> DerefMut for InlineVec<T, N> {
    #[inline]
    fn deref_mut(&mut self) -> &mut [T] {
        self.as_mut_slice()
    }
}

impl<T: Copy + Default, const N: usize> Index<usize> for InlineVec<T, N> {
    type Output = T;
    #[inline]
    fn index(&self, i: usize) -> &T {
        &self.as_slice()[i]
    }
}

impl<T: Copy + Default, const N: usize> IndexMut<usize> for InlineVec<T, N> {
    #[inline]
    fn index_mut(&mut self, i: usize) -> &mut T {
        &mut self.as_mut_slice()[i]
    }
}

impl<T: Copy + Default + fmt::Debug, const N: usize> fmt::Debug for InlineVec<T, N> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.as_slice()).finish()
    }
}

impl<T: Copy + Default + PartialEq, const N: usize> PartialEq for InlineVec<T, N> {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl<T: Copy + Default + Eq, const N: usize> Eq for InlineVec<T, N> {}

impl<'a, T: Copy + Default, const N: usize> IntoIterator for &'a InlineVec<T, N> {
    type Item = &'a T;
    type IntoIter = std::slice::Iter<'a, T>;
    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

impl<T: Copy + Default, const N: usize> FromIterator<T> for InlineVec<T, N> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        let mut v = Self::new();
        for x in iter {
            v.push(x);
        }
        v
    }
}

impl<T: Copy + Default, const N: usize> Extend<T> for InlineVec<T, N> {
    fn extend<I: IntoIterator<Item = T>>(&mut self, iter: I) {
        for x in iter {
            self.push(x);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stays_inline_up_to_capacity() {
        let mut v: InlineVec<u32, 4> = InlineVec::new();
        assert!(v.is_empty());
        for i in 0..4 {
            v.push(i);
        }
        assert!(v.is_inline());
        assert_eq!(v.as_slice(), &[0, 1, 2, 3]);
        assert_eq!(v.len(), 4);
    }

    #[test]
    fn spills_past_capacity_and_stays_contiguous() {
        let mut v: InlineVec<u32, 2> = InlineVec::new();
        for i in 0..10 {
            v.push(i);
        }
        assert!(!v.is_inline());
        assert_eq!(v.as_slice(), (0..10).collect::<Vec<_>>().as_slice());
        assert_eq!(v[7], 7);
    }

    #[test]
    fn pop_round_trips_across_the_spill_boundary() {
        let mut v: InlineVec<u8, 2> = InlineVec::new();
        for i in 0..4 {
            v.push(i);
        }
        assert_eq!(v.pop(), Some(3));
        assert_eq!(v.pop(), Some(2));
        assert_eq!(v.pop(), Some(1));
        assert_eq!(v.pop(), Some(0));
        assert_eq!(v.pop(), None);
    }

    #[test]
    fn swap_remove_inline_and_spilled() {
        let mut v: InlineVec<u32, 4> = InlineVec::from_slice(&[10, 20, 30]);
        assert_eq!(v.swap_remove(0), 10);
        assert_eq!(v.as_slice(), &[30, 20]);
        let mut s: InlineVec<u32, 2> = InlineVec::from_slice(&[1, 2, 3, 4, 5]);
        assert_eq!(s.swap_remove(1), 2);
        assert_eq!(s.as_slice(), &[1, 5, 3, 4]);
    }

    #[test]
    #[should_panic(expected = "swap_remove")]
    fn swap_remove_out_of_bounds_panics() {
        let mut v: InlineVec<u32, 2> = InlineVec::from_slice(&[1]);
        v.swap_remove(1);
    }

    #[test]
    fn clear_returns_to_inline_storage() {
        let mut v: InlineVec<u32, 2> = InlineVec::from_slice(&[1, 2, 3]);
        assert!(!v.is_inline());
        v.clear();
        assert!(v.is_empty());
        v.push(9);
        assert!(v.is_inline(), "cleared spill means inline again");
        assert_eq!(v.as_slice(), &[9]);
    }

    #[test]
    fn contains_iter_and_collect() {
        let v: InlineVec<u32, 4> = (0..3).collect();
        assert!(v.contains(&2));
        assert!(!v.contains(&7));
        assert_eq!(v.iter().sum::<u32>(), 3);
        let doubled: Vec<u32> = v.iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![0, 2, 4]);
    }

    #[test]
    fn equality_ignores_storage_mode() {
        let a: InlineVec<u32, 8> = (0..5).collect();
        let b: InlineVec<u32, 2> = (0..5).collect();
        assert_eq!(a.as_slice(), b.as_slice());
    }

    #[test]
    fn clone_preserves_contents() {
        let v: InlineVec<u32, 2> = (0..6).collect();
        let c = v.clone();
        assert_eq!(v, c);
    }
}
