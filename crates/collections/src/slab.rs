//! A generation-indexed slot map.

use std::fmt;

/// Handle to a value stored in a [`Slab`]: a slot index plus the
/// generation the slot had when the value was inserted.
///
/// A `SlotId` held after its value was removed goes *stale*: the slot's
/// generation has moved on, so `get`/`get_mut`/`remove` through the stale
/// id return `None` even if the slot was reused. This is what lets the
/// simulation engine keep cheap copies of segment handles in queues and
/// candidate lists without use-after-free hazards.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SlotId {
    idx: u32,
    gen: u32,
}

impl SlotId {
    /// The raw slot index (stable while the id is live; reused after
    /// removal). Exposed for diagnostics only.
    #[inline]
    pub fn index(self) -> usize {
        self.idx as usize
    }

    /// The generation the slot had when this id was issued.
    #[inline]
    pub fn generation(self) -> u32 {
        self.gen
    }

    /// Rebuilds a handle from its raw `(index, generation)` pair, as
    /// produced by [`SlotId::index`]/[`SlotId::generation`]. Intended for
    /// snapshot restore: a raw pair pointing at a slot whose generation
    /// has moved on simply yields a stale (harmless) handle.
    #[inline]
    pub fn from_raw(idx: u32, gen: u32) -> Self {
        SlotId { idx, gen }
    }
}

impl fmt::Display for SlotId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "slot{}g{}", self.idx, self.gen)
    }
}

#[derive(Debug, Clone)]
struct Slot<T> {
    gen: u32,
    val: Option<T>,
}

/// A slab allocator / slot map with generation-checked handles.
///
/// `insert` is O(1) (pop a free slot or push), `remove`/`get`/`get_mut`
/// are an array index plus a generation compare. Freed slots are reused
/// LIFO, so steady-state workloads (the simulator allocates and frees one
/// segment per worm-router traversal) touch a small, cache-hot prefix and
/// never grow the backing storage.
#[derive(Debug, Clone)]
pub struct Slab<T> {
    slots: Vec<Slot<T>>,
    free: Vec<u32>,
    len: usize,
}

impl<T> Slab<T> {
    /// An empty slab.
    pub fn new() -> Self {
        Slab {
            slots: Vec::new(),
            free: Vec::new(),
            len: 0,
        }
    }

    /// An empty slab with room for `cap` values before reallocating.
    pub fn with_capacity(cap: usize) -> Self {
        Slab {
            slots: Vec::with_capacity(cap),
            free: Vec::with_capacity(cap),
            len: 0,
        }
    }

    /// Number of live values.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no values are live.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts a value, returning its handle.
    pub fn insert(&mut self, value: T) -> SlotId {
        self.len += 1;
        if let Some(idx) = self.free.pop() {
            let slot = &mut self.slots[idx as usize];
            debug_assert!(slot.val.is_none());
            slot.val = Some(value);
            SlotId { idx, gen: slot.gen }
        } else {
            let idx = u32::try_from(self.slots.len()).expect("slab capped at u32 slots");
            self.slots.push(Slot {
                gen: 0,
                val: Some(value),
            });
            SlotId { idx, gen: 0 }
        }
    }

    /// Removes and returns the value behind `id`; `None` if `id` is stale
    /// or was never live.
    pub fn remove(&mut self, id: SlotId) -> Option<T> {
        let slot = self.slots.get_mut(id.idx as usize)?;
        if slot.gen != id.gen || slot.val.is_none() {
            return None;
        }
        let v = slot.val.take();
        // Bump the generation on removal so every outstanding copy of `id`
        // goes stale immediately.
        slot.gen = slot.gen.wrapping_add(1);
        self.free.push(id.idx);
        self.len -= 1;
        v
    }

    /// Shared access to the value behind `id` (`None` if stale).
    #[inline]
    pub fn get(&self, id: SlotId) -> Option<&T> {
        let slot = self.slots.get(id.idx as usize)?;
        if slot.gen == id.gen {
            slot.val.as_ref()
        } else {
            None
        }
    }

    /// Mutable access to the value behind `id` (`None` if stale).
    #[inline]
    pub fn get_mut(&mut self, id: SlotId) -> Option<&mut T> {
        let slot = self.slots.get_mut(id.idx as usize)?;
        if slot.gen == id.gen {
            slot.val.as_mut()
        } else {
            None
        }
    }

    /// True when `id` refers to a live value.
    #[inline]
    pub fn contains(&self, id: SlotId) -> bool {
        self.get(id).is_some()
    }

    /// Iterates over live `(id, value)` pairs in ascending slot order
    /// (deterministic: depends only on the operation sequence).
    pub fn iter(&self) -> impl Iterator<Item = (SlotId, &T)> {
        self.slots.iter().enumerate().filter_map(|(i, s)| {
            s.val.as_ref().map(|v| {
                (
                    SlotId {
                        idx: i as u32,
                        gen: s.gen,
                    },
                    v,
                )
            })
        })
    }

    /// Removes all values (generations advance, so old ids stay stale).
    pub fn clear(&mut self) {
        for (i, slot) in self.slots.iter_mut().enumerate() {
            if slot.val.take().is_some() {
                slot.gen = slot.gen.wrapping_add(1);
                self.free.push(i as u32);
            }
        }
        self.len = 0;
    }

    /// Total physical slots (live + vacant).
    #[inline]
    pub fn num_slots(&self) -> usize {
        self.slots.len()
    }

    /// The vacant-slot free list in its exact LIFO order. Future inserts
    /// pop from the *end*, so this order is observable through the ids
    /// they return and must survive a snapshot round-trip byte-exactly.
    #[inline]
    pub fn free_list(&self) -> &[u32] {
        &self.free
    }

    /// Visits every physical slot in index order — vacant ones included —
    /// yielding its generation counter and its value, if live. Together
    /// with [`Slab::free_list`] this is the complete observable state.
    pub fn snapshot_slots(&self, mut f: impl FnMut(u32, Option<&T>)) {
        for slot in &self.slots {
            f(slot.gen, slot.val.as_ref());
        }
    }

    /// Rebuilds a slab from raw parts captured by [`Slab::snapshot_slots`]
    /// and [`Slab::free_list`]. Validates the structural invariants — the
    /// free list must index each vacant slot exactly once and no live one
    /// — and reports a violation as a typed error instead of panicking, so
    /// corrupted snapshot input cannot construct an inconsistent arena.
    pub fn from_raw_parts(
        slots: Vec<(u32, Option<T>)>,
        free: Vec<u32>,
    ) -> Result<Self, &'static str> {
        let live = slots.iter().filter(|(_, v)| v.is_some()).count();
        if free.len() != slots.len() - live {
            return Err("slab free list length disagrees with vacant slot count");
        }
        let mut seen = vec![false; slots.len()];
        for &idx in &free {
            let Some(slot) = slots.get(idx as usize) else {
                return Err("slab free list indexes past the slot array");
            };
            if slot.1.is_some() {
                return Err("slab free list indexes a live slot");
            }
            if seen[idx as usize] {
                return Err("slab free list repeats a slot");
            }
            seen[idx as usize] = true;
        }
        Ok(Slab {
            slots: slots
                .into_iter()
                .map(|(gen, val)| Slot { gen, val })
                .collect(),
            free,
            len: live,
        })
    }
}

impl<T> Default for Slab<T> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_round_trip() {
        let mut s = Slab::new();
        let a = s.insert("a");
        let b = s.insert("b");
        assert_eq!(s.len(), 2);
        assert_eq!(s.get(a), Some(&"a"));
        assert_eq!(s.get(b), Some(&"b"));
        assert_eq!(s.remove(a), Some("a"));
        assert_eq!(s.len(), 1);
        assert_eq!(s.get(a), None, "removed handle is stale");
    }

    #[test]
    fn stale_ids_never_alias_reused_slots() {
        let mut s = Slab::new();
        let a = s.insert(1u32);
        s.remove(a);
        let b = s.insert(2u32);
        // Same physical slot, different generation.
        assert_eq!(a.index(), b.index());
        assert_eq!(s.get(a), None);
        assert_eq!(s.get_mut(a), None);
        assert_eq!(s.remove(a), None);
        assert_eq!(s.get(b), Some(&2));
        assert!(s.contains(b));
        assert!(!s.contains(a));
    }

    #[test]
    fn freed_slots_are_reused_lifo() {
        let mut s = Slab::new();
        let ids: Vec<SlotId> = (0..4).map(|i| s.insert(i)).collect();
        s.remove(ids[1]);
        s.remove(ids[3]);
        let x = s.insert(10);
        let y = s.insert(11);
        assert_eq!(x.index(), 3, "last freed, first reused");
        assert_eq!(y.index(), 1);
        assert_eq!(s.len(), 4);
    }

    #[test]
    fn iter_is_in_slot_order_and_skips_holes() {
        let mut s = Slab::new();
        let ids: Vec<SlotId> = (0..5).map(|i| s.insert(i * 10)).collect();
        s.remove(ids[2]);
        let seen: Vec<(usize, u32)> = s.iter().map(|(id, &v)| (id.index(), v)).collect();
        assert_eq!(seen, vec![(0, 0), (1, 10), (3, 30), (4, 40)]);
    }

    #[test]
    fn get_mut_mutates_in_place() {
        let mut s = Slab::new();
        let a = s.insert(5u32);
        *s.get_mut(a).unwrap() += 1;
        assert_eq!(s.get(a), Some(&6));
    }

    #[test]
    fn clear_stales_everything() {
        let mut s = Slab::new();
        let a = s.insert(1);
        let b = s.insert(2);
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.get(a), None);
        assert_eq!(s.get(b), None);
        let c = s.insert(3);
        assert_eq!(s.get(c), Some(&3));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn raw_parts_round_trip_preserves_everything_observable() {
        let mut s = Slab::new();
        let ids: Vec<SlotId> = (0..6).map(|i| s.insert(i * 7)).collect();
        s.remove(ids[1]);
        s.remove(ids[4]);
        s.remove(ids[2]);

        let mut slots = Vec::new();
        s.snapshot_slots(|gen, v| slots.push((gen, v.copied())));
        let rebuilt = Slab::from_raw_parts(slots, s.free_list().to_vec()).unwrap();

        assert_eq!(rebuilt.len(), s.len());
        assert_eq!(rebuilt.num_slots(), s.num_slots());
        for &id in &[ids[0], ids[3], ids[5]] {
            assert_eq!(rebuilt.get(id), s.get(id));
        }
        for &stale in &[ids[1], ids[2], ids[4]] {
            assert_eq!(rebuilt.get(stale), None);
        }
        // LIFO reuse order is part of the observable state: the next two
        // inserts must hand out the same slots in both slabs.
        let (mut a, mut b) = (s, rebuilt);
        for _ in 0..3 {
            assert_eq!(a.insert(99), b.insert(99));
        }
    }

    #[test]
    fn raw_parts_rejects_inconsistent_free_lists() {
        // Free list pointing at a live slot.
        assert!(Slab::from_raw_parts(vec![(0, Some(1u32))], vec![0]).is_err());
        // Free list shorter than the vacant count.
        assert!(Slab::<u32>::from_raw_parts(vec![(1, None)], vec![]).is_err());
        // Free list indexing out of bounds.
        assert!(Slab::<u32>::from_raw_parts(vec![(1, None)], vec![5]).is_err());
        // Duplicate free entries.
        assert!(Slab::<u32>::from_raw_parts(vec![(1, None), (1, None)], vec![0, 0]).is_err());
        // A consistent vacant-only slab is fine.
        let ok = Slab::<u32>::from_raw_parts(vec![(3, None), (0, Some(9))], vec![0]).unwrap();
        assert_eq!(ok.len(), 1);
        assert_eq!(ok.get(SlotId::from_raw(1, 0)), Some(&9));
        assert_eq!(ok.get(SlotId::from_raw(0, 2)), None, "stale raw id");
    }

    #[test]
    fn slot_id_raw_round_trip() {
        let id = SlotId::from_raw(7, 3);
        assert_eq!(id.index(), 7);
        assert_eq!(id.generation(), 3);
        assert_eq!(SlotId::from_raw(7, 3), id);
    }

    #[test]
    fn mixed_churn_keeps_len_consistent() {
        let mut s = Slab::new();
        let mut live = Vec::new();
        for round in 0..100u32 {
            live.push(s.insert(round));
            if round % 3 == 0 {
                let id = live.remove((round as usize) % live.len());
                assert!(s.remove(id).is_some());
            }
        }
        assert_eq!(s.len(), live.len());
        for id in live {
            assert!(s.contains(id));
        }
    }
}
