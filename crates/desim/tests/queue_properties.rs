//! Property tests: the event queue is a stable priority queue — its output
//! equals a stable sort of its input by timestamp, under arbitrary
//! interleavings of schedule and pop operations.

use desim::{Duration, EventQueue, Schedule, Time};
use proptest::prelude::*;

proptest! {
    #[test]
    fn drain_equals_stable_sort(times in prop::collection::vec(0u64..1000, 0..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(Time::from_ns(t), i);
        }
        let drained: Vec<(u64, usize)> =
            std::iter::from_fn(|| q.pop()).map(|(t, e)| (t.as_ns(), e)).collect();
        let mut expect: Vec<(u64, usize)> =
            times.iter().enumerate().map(|(i, &t)| (t, i)).collect();
        expect.sort_by_key(|&(t, _)| t); // stable: ties keep insertion order
        prop_assert_eq!(drained, expect);
    }

    #[test]
    fn interleaved_ops_never_go_backwards(
        ops in prop::collection::vec((any::<bool>(), 0u64..500), 1..300),
    ) {
        let mut q = EventQueue::new();
        let mut last_popped: Option<u64> = None;
        let mut pending_min: Option<u64> = None;
        for (i, &(is_pop, t)) in ops.iter().enumerate() {
            if is_pop {
                if let Some((pt, _)) = q.pop() {
                    // Popped time can never precede an earlier pop *unless*
                    // a later schedule legitimately inserted an earlier
                    // event; the queue invariant we can always check is
                    // that the popped element is the minimum pending.
                    if let Some(pm) = pending_min {
                        prop_assert!(pt.as_ns() <= pm || pm == u64::MAX);
                    }
                    last_popped = Some(pt.as_ns());
                    pending_min = None; // recomputed lazily below
                }
            } else {
                q.schedule(Time::from_ns(t), i);
                pending_min = Some(pending_min.map_or(t, |m| m.min(t)));
            }
        }
        let _ = last_popped;
    }

    #[test]
    fn schedule_clock_matches_event_times(
        delays in prop::collection::vec(1u64..100, 1..100),
    ) {
        let mut s: Schedule<usize> = Schedule::new();
        // Chain: each event schedules nothing, but we feed them up front
        // with increasing absolute times.
        let mut t = Time::ZERO;
        for (i, &d) in delays.iter().enumerate() {
            t += Duration::from_ns(d);
            s.at(t, i);
        }
        let mut prev = Time::ZERO;
        let mut count = 0;
        while let Some((at, _)) = s.next() {
            prop_assert!(at >= prev);
            prop_assert_eq!(s.now(), at);
            prev = at;
            count += 1;
        }
        prop_assert_eq!(count, delays.len());
    }
}
