//! Property tests: the event queue is a stable priority queue — its output
//! equals a stable sort of its input by timestamp, under arbitrary
//! interleavings of schedule and pop operations — and the bucketed
//! timing-wheel implementation is observationally identical to the
//! reference binary heap on every schedule a `Schedule` can express.

use desim::{Duration, EventQueue, QueueKind, Schedule, Time, WHEEL_SPAN_NS};
use proptest::prelude::*;

/// Deltas spanning every wheel level: same-instant bursts, level-0
/// neighbors, level-1/2 boundaries, a mid-wheel jump, and beyond-the-span
/// overflow territory.
const DELTAS: [u64; 12] = [
    0,
    1,
    10,
    40,
    63,
    64,
    100,
    4_095,
    4_096,
    100_000,
    20_000_000,
    1 << 37,
];

proptest! {
    #[test]
    fn drain_equals_stable_sort(times in prop::collection::vec(0u64..1000, 0..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(Time::from_ns(t), i);
        }
        let drained: Vec<(u64, usize)> =
            std::iter::from_fn(|| q.pop()).map(|(t, e)| (t.as_ns(), e)).collect();
        let mut expect: Vec<(u64, usize)> =
            times.iter().enumerate().map(|(i, &t)| (t, i)).collect();
        expect.sort_by_key(|&(t, _)| t); // stable: ties keep insertion order
        prop_assert_eq!(drained, expect);
    }

    #[test]
    fn interleaved_ops_never_go_backwards(
        ops in prop::collection::vec((any::<bool>(), 0u64..500), 1..300),
    ) {
        let mut q = EventQueue::new();
        let mut last_popped: Option<u64> = None;
        let mut pending_min: Option<u64> = None;
        for (i, &(is_pop, t)) in ops.iter().enumerate() {
            if is_pop {
                if let Some((pt, _)) = q.pop() {
                    // Popped time can never precede an earlier pop *unless*
                    // a later schedule legitimately inserted an earlier
                    // event; the queue invariant we can always check is
                    // that the popped element is the minimum pending.
                    if let Some(pm) = pending_min {
                        prop_assert!(pt.as_ns() <= pm || pm == u64::MAX);
                    }
                    last_popped = Some(pt.as_ns());
                    pending_min = None; // recomputed lazily below
                }
            } else {
                q.schedule(Time::from_ns(t), i);
                pending_min = Some(pending_min.map_or(t, |m| m.min(t)));
            }
        }
        let _ = last_popped;
    }

    #[test]
    fn bucket_queue_matches_heap_queue_pop_for_pop(
        ops in prop::collection::vec((any::<bool>(), 0usize..DELTAS.len()), 1..400),
    ) {
        let mut heap = EventQueue::with_kind(QueueKind::Heap);
        let mut wheel = EventQueue::with_kind(QueueKind::Bucket);
        // The discrete-event clock invariant both queues run under: never
        // schedule before the last popped instant.
        let mut floor = 0u64;
        for (i, &(is_pop, delta_idx)) in ops.iter().enumerate() {
            if is_pop {
                let a = heap.pop();
                let b = wheel.pop();
                prop_assert_eq!(&a, &b, "pop #{} diverged", i);
                if let Some((t, _)) = a {
                    floor = t.as_ns();
                }
            } else {
                let t = Time::from_ns(floor + DELTAS[delta_idx % DELTAS.len()]);
                heap.schedule(t, i);
                wheel.schedule(t, i);
            }
            prop_assert_eq!(heap.len(), wheel.len());
            prop_assert_eq!(heap.peek_time(), wheel.peek_time());
        }
        // Drain whatever is left: the tails must agree event for event.
        loop {
            let a = heap.pop();
            let b = wheel.pop();
            prop_assert_eq!(&a, &b, "drain diverged");
            if a.is_none() {
                break;
            }
        }
    }

    #[test]
    fn bucket_queue_same_instant_bursts_stay_fifo(
        bursts in prop::collection::vec((0usize..DELTAS.len(), 1usize..20), 1..50),
    ) {
        // Schedule bursts at increasing instants, interleaving pops, and
        // check FIFO order within each instant against the heap.
        let mut heap = EventQueue::with_kind(QueueKind::Heap);
        let mut wheel = EventQueue::with_kind(QueueKind::Bucket);
        let mut t = 0u64;
        let mut payload = 0u64;
        for &(delta_idx, burst) in &bursts {
            t += DELTAS[delta_idx % DELTAS.len()];
            for _ in 0..burst {
                heap.schedule(Time::from_ns(t), payload);
                wheel.schedule(Time::from_ns(t), payload);
                payload += 1;
            }
            // Pop roughly half after each burst to interleave.
            for _ in 0..burst / 2 {
                prop_assert_eq!(heap.pop(), wheel.pop());
            }
            if let Some(pt) = heap.peek_time() {
                t = t.max(pt.as_ns());
            }
        }
        loop {
            let a = heap.pop();
            let b = wheel.pop();
            prop_assert_eq!(&a, &b);
            if a.is_none() {
                break;
            }
        }
    }

    #[test]
    fn wheel_overflow_list_matches_heap(
        ops in prop::collection::vec(
            (any::<bool>(), 0u64..4, 0u64..200), 1..300,
        ),
    ) {
        // Events landing past the wheel's span (~68.7 s of simulated
        // time) park on an overflow list and re-ingest as the wheel
        // advances. Keep a standing population of far-future events —
        // 0, 1, 2, or 3 whole spans out, plus near-instant jitter — and
        // interleave pops, so draining constantly migrates events from
        // the overflow list back into live slots. The heap has no such
        // list; any divergence is an overflow-path bug.
        let mut heap = EventQueue::with_kind(QueueKind::Heap);
        let mut wheel = EventQueue::with_kind(QueueKind::Bucket);
        let mut floor = 0u64;
        for (i, &(is_pop, spans, jitter)) in ops.iter().enumerate() {
            if is_pop {
                let a = heap.pop();
                let b = wheel.pop();
                prop_assert_eq!(&a, &b, "pop #{} diverged", i);
                if let Some((t, _)) = a {
                    floor = t.as_ns();
                }
            } else {
                let t = Time::from_ns(floor + spans * WHEEL_SPAN_NS + jitter);
                heap.schedule(t, i);
                wheel.schedule(t, i);
            }
            prop_assert_eq!(heap.peek_time(), wheel.peek_time());
        }
        loop {
            let a = heap.pop();
            let b = wheel.pop();
            prop_assert_eq!(&a, &b, "overflow drain diverged");
            if a.is_none() {
                break;
            }
        }
    }

    #[test]
    fn storm_burst_boundaries_stay_fifo_across_the_span(
        windows in prop::collection::vec(
            (0u64..3, 1usize..12, 1usize..12), 1..30,
        ),
    ) {
        // A fault-storm schedule in miniature: at each window boundary a
        // burst of same-instant teardown events lands together with a
        // burst one wheel-span later (the relabel/horizon tail). FIFO
        // order within each instant and heap/wheel agreement must both
        // survive the boundary straddling the overflow list — the exact
        // shape a storm spec with a long horizon produces.
        let mut heap = EventQueue::with_kind(QueueKind::Heap);
        let mut wheel = EventQueue::with_kind(QueueKind::Bucket);
        let mut t = 0u64;
        let mut payload = 0u64;
        for &(gap_spans, burst_now, burst_far) in &windows {
            // Window boundary: just before, at, and just after a span
            // multiple — the three instants a storm's `window_end` can
            // land relative to the wheel horizon.
            t += gap_spans * WHEEL_SPAN_NS + (WHEEL_SPAN_NS / 2);
            for instant in [t.saturating_sub(1), t, t + 1] {
                for _ in 0..burst_now {
                    heap.schedule(Time::from_ns(instant), payload);
                    wheel.schedule(Time::from_ns(instant), payload);
                    payload += 1;
                }
            }
            let far = t + WHEEL_SPAN_NS;
            for _ in 0..burst_far {
                heap.schedule(Time::from_ns(far), payload);
                wheel.schedule(Time::from_ns(far), payload);
                payload += 1;
            }
            // Drain the near bursts; the far burst stays parked.
            for _ in 0..(3 * burst_now) {
                let a = heap.pop();
                let b = wheel.pop();
                prop_assert_eq!(&a, &b, "near-burst pop diverged");
                if let Some((pt, _)) = a {
                    t = t.max(pt.as_ns());
                }
            }
        }
        loop {
            let a = heap.pop();
            let b = wheel.pop();
            prop_assert_eq!(&a, &b, "far-tail drain diverged");
            if a.is_none() {
                break;
            }
        }
    }

    #[test]
    fn schedule_clock_matches_event_times(
        delays in prop::collection::vec(1u64..100, 1..100),
    ) {
        let mut s: Schedule<usize> = Schedule::new();
        // Chain: each event schedules nothing, but we feed them up front
        // with increasing absolute times.
        let mut t = Time::ZERO;
        for (i, &d) in delays.iter().enumerate() {
            t += Duration::from_ns(d);
            s.at(t, i);
        }
        let mut prev = Time::ZERO;
        let mut count = 0;
        while let Some((at, _)) = s.next() {
            prop_assert!(at >= prev);
            prop_assert_eq!(s.now(), at);
            prev = at;
            count += 1;
        }
        prop_assert_eq!(count, delays.len());
    }
}
