//! Periodic sampling cadence for sim-time telemetry.
//!
//! A [`Ticker`] is the event-kind-free way to drive periodic work (gauge
//! sampling, watermark snapshots) from a discrete-event loop. Scheduling
//! real queue events for sampling would perturb everything an observer
//! must not touch: the popped-event count, the end-of-run clock, watchdog
//! arithmetic, and same-instant FIFO interleaving. A `Ticker` instead
//! lives *beside* the queue: the simulation loop asks "which tick
//! instants are due strictly before the event I am about to fire?" and
//! drains them synchronously, so the event stream — and therefore every
//! simulated outcome — is byte-identical with sampling on or off.
//!
//! ```
//! use desim::{Duration, Ticker, Time};
//!
//! let mut t = Ticker::every(Duration::from_ns(100));
//! assert_eq!(t.next_at(), Time::from_ns(100));
//! let mut fired = Vec::new();
//! t.drain_through(Time::from_ns(350), |at| fired.push(at.as_ns()));
//! assert_eq!(fired, vec![100, 200, 300]);
//! assert_eq!(t.next_at(), Time::from_ns(400));
//! ```

use crate::time::{Duration, Time};

/// A fixed-period cadence over simulation time. See the module docs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ticker {
    period: u64,
    next: u64,
}

impl Ticker {
    /// A cadence firing at `period`, `2*period`, `3*period`, ... (the
    /// instant 0 is skipped: a sample there would observe nothing but
    /// initial state).
    ///
    /// # Panics
    ///
    /// Panics on a zero period — that cadence never advances.
    pub fn every(period: Duration) -> Self {
        assert!(period.as_ns() > 0, "a Ticker needs a non-zero period");
        Ticker {
            period: period.as_ns(),
            next: period.as_ns(),
        }
    }

    /// The configured period.
    #[inline]
    pub fn period(&self) -> Duration {
        Duration::from_ns(self.period)
    }

    /// The next instant this cadence fires at.
    #[inline]
    pub fn next_at(&self) -> Time {
        Time::from_ns(self.next)
    }

    /// Consumes the pending tick, advancing to the following one.
    /// Saturates at the far end of simulated time rather than wrapping.
    #[inline]
    pub fn advance(&mut self) {
        self.next = self.next.saturating_add(self.period);
    }

    /// Fires `f` once per due tick, in order, for every tick instant
    /// `<= t`. Call with the timestamp of the event about to be handled
    /// (ticks are conceptually processed *before* the instant's events).
    #[inline]
    pub fn drain_through(&mut self, t: Time, mut f: impl FnMut(Time)) {
        while self.next <= t.as_ns() {
            f(Time::from_ns(self.next));
            self.advance();
        }
    }

    /// The cadence's raw `(period_ns, next_ns)` state, for snapshots.
    #[inline]
    pub fn parts(&self) -> (u64, u64) {
        (self.period, self.next)
    }

    /// Rebuilds a cadence from [`Ticker::parts`]. Returns `None` for a
    /// zero period (that cadence never advances), so corrupted snapshot
    /// input surfaces as a typed error instead of an infinite loop.
    pub fn from_parts(period_ns: u64, next_ns: u64) -> Option<Self> {
        if period_ns == 0 {
            return None;
        }
        Some(Ticker {
            period: period_ns,
            next: next_ns,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ticks_are_periodic_and_skip_zero() {
        let mut t = Ticker::every(Duration::from_ns(50));
        assert_eq!(t.period(), Duration::from_ns(50));
        assert_eq!(t.next_at(), Time::from_ns(50));
        t.advance();
        assert_eq!(t.next_at(), Time::from_ns(100));
    }

    #[test]
    fn drain_fires_every_due_instant_once() {
        let mut t = Ticker::every(Duration::from_ns(10));
        let mut fired = Vec::new();
        t.drain_through(Time::from_ns(35), |at| fired.push(at.as_ns()));
        assert_eq!(fired, vec![10, 20, 30]);
        // Nothing new due until 40.
        t.drain_through(Time::from_ns(39), |at| fired.push(at.as_ns()));
        assert_eq!(fired, vec![10, 20, 30]);
        // An exactly-due boundary fires (ticks precede the instant's events).
        t.drain_through(Time::from_ns(40), |at| fired.push(at.as_ns()));
        assert_eq!(fired, vec![10, 20, 30, 40]);
    }

    #[test]
    fn advance_saturates_instead_of_wrapping() {
        let mut t = Ticker::every(Duration::from_ns(u64::MAX / 2));
        t.advance();
        t.advance();
        t.advance();
        assert_eq!(t.next_at(), Time::from_ns(u64::MAX));
    }

    #[test]
    #[should_panic(expected = "non-zero period")]
    fn zero_period_panics() {
        Ticker::every(Duration::from_ns(0));
    }
}
