//! Simulation time and duration types.
//!
//! All wormhole-level latencies in the paper are expressed in nanoseconds
//! (router setup 40 ns, channel propagation 10 ns) or microseconds (startup
//! 10 µs), so a `u64` nanosecond clock gives exact arithmetic with headroom
//! for ~584 simulated years — far beyond any experiment here.

use std::fmt;
use std::ops::{Add, AddAssign, Mul, Sub};

/// An absolute instant on the simulation clock, in nanoseconds since the
/// start of the simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Time(u64);

/// A span of simulated time, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Duration(u64);

impl Time {
    /// The start of the simulation.
    pub const ZERO: Time = Time(0);
    /// The largest representable instant (used as an "infinity" sentinel by
    /// watchdogs and reductions).
    pub const MAX: Time = Time(u64::MAX);

    /// Constructs an instant from a raw nanosecond count.
    #[inline]
    pub const fn from_ns(ns: u64) -> Self {
        Time(ns)
    }

    /// Constructs an instant from microseconds.
    #[inline]
    pub const fn from_us(us: u64) -> Self {
        Time(us * 1_000)
    }

    /// Raw nanosecond count.
    #[inline]
    pub const fn as_ns(self) -> u64 {
        self.0
    }

    /// This instant expressed in (fractional) microseconds — the unit used
    /// by every figure in the paper.
    #[inline]
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// The duration elapsed since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `earlier` is after `self`.
    #[inline]
    pub fn since(self, earlier: Time) -> Duration {
        debug_assert!(self >= earlier, "negative elapsed time");
        Duration(self.0 - earlier.0)
    }

    /// Saturating duration since `earlier` (zero if `earlier` is later).
    #[inline]
    pub fn saturating_since(self, earlier: Time) -> Duration {
        Duration(self.0.saturating_sub(earlier.0))
    }
}

impl Duration {
    /// The zero-length duration.
    pub const ZERO: Duration = Duration(0);

    /// Constructs a duration from nanoseconds.
    #[inline]
    pub const fn from_ns(ns: u64) -> Self {
        Duration(ns)
    }

    /// Constructs a duration from microseconds.
    #[inline]
    pub const fn from_us(us: u64) -> Self {
        Duration(us * 1_000)
    }

    /// Raw nanosecond count.
    #[inline]
    pub const fn as_ns(self) -> u64 {
        self.0
    }

    /// This duration in fractional microseconds.
    #[inline]
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Integer scaling, e.g. `propagation * flits_per_message`.
    #[inline]
    pub const fn scaled(self, k: u64) -> Duration {
        Duration(self.0 * k)
    }
}

impl Add<Duration> for Time {
    type Output = Time;
    #[inline]
    fn add(self, rhs: Duration) -> Time {
        Time(self.0 + rhs.0)
    }
}

impl AddAssign<Duration> for Time {
    #[inline]
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl Sub<Time> for Time {
    type Output = Duration;
    #[inline]
    fn sub(self, rhs: Time) -> Duration {
        self.since(rhs)
    }
}

impl Add for Duration {
    type Output = Duration;
    #[inline]
    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0 + rhs.0)
    }
}

impl AddAssign for Duration {
    #[inline]
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl Sub for Duration {
    type Output = Duration;
    #[inline]
    fn sub(self, rhs: Duration) -> Duration {
        debug_assert!(self.0 >= rhs.0, "negative duration");
        Duration(self.0 - rhs.0)
    }
}

impl Mul<u64> for Duration {
    type Output = Duration;
    #[inline]
    fn mul(self, rhs: u64) -> Duration {
        Duration(self.0 * rhs)
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}ns", self.0)
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}ns", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_conversions_are_exact() {
        assert_eq!(Time::from_us(10).as_ns(), 10_000);
        assert_eq!(Duration::from_us(3).as_ns(), 3_000);
        assert_eq!(Time::from_ns(12_500).as_us_f64(), 12.5);
        assert_eq!(Duration::from_ns(40).as_us_f64(), 0.04);
    }

    #[test]
    fn arithmetic_round_trips() {
        let t = Time::from_ns(100);
        let d = Duration::from_ns(40);
        assert_eq!(t + d, Time::from_ns(140));
        assert_eq!((t + d) - t, d);
        assert_eq!((t + d).since(t), d);
        assert_eq!(d + d, Duration::from_ns(80));
        assert_eq!(d * 3, Duration::from_ns(120));
        assert_eq!(d.scaled(128), Duration::from_ns(5120));
    }

    #[test]
    fn saturating_since_clamps_to_zero() {
        let early = Time::from_ns(5);
        let late = Time::from_ns(9);
        assert_eq!(early.saturating_since(late), Duration::ZERO);
        assert_eq!(late.saturating_since(early), Duration::from_ns(4));
    }

    #[test]
    fn ordering_matches_numeric_order() {
        assert!(Time::from_ns(1) < Time::from_ns(2));
        assert!(Time::ZERO < Time::MAX);
        assert!(Duration::from_ns(10) > Duration::ZERO);
    }

    #[test]
    fn display_formats_ns() {
        assert_eq!(Time::from_ns(42).to_string(), "42ns");
        assert_eq!(Duration::from_us(1).to_string(), "1000ns");
    }
}
