#![warn(missing_docs)]

//! # desim — deterministic discrete-event simulation engine
//!
//! A minimal, allocation-conscious discrete-event core used by the
//! flit-level wormhole simulator ([`wormsim`]). It provides:
//!
//! * [`Time`] — a nanosecond-resolution simulation clock value,
//! * [`EventQueue`] — a deterministic future-event list: events scheduled
//!   for the same instant are delivered in scheduling order (FIFO),
//! * [`Schedule`] — a small façade combining the clock and the queue.
//!
//! Determinism is a hard requirement for the reproduction: the paper reports
//! means with tight confidence intervals, and regression tests pin exact
//! latency values for seeded runs. The queue therefore breaks ties in the
//! event heap with a monotonically increasing sequence number rather than
//! relying on [`std::collections::BinaryHeap`]'s unspecified equal-key order.
//!
//! ```
//! use desim::{EventQueue, Time};
//!
//! let mut q = EventQueue::new();
//! q.schedule(Time::from_ns(30), "c");
//! q.schedule(Time::from_ns(10), "a");
//! q.schedule(Time::from_ns(10), "b"); // same instant: FIFO with "a"
//! let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
//! assert_eq!(order, vec!["a", "b", "c"]);
//! ```

pub mod bucket;
pub mod queue;
pub mod tick;
pub mod time;

pub use bucket::{BucketQueue, QueueOccupancy, WHEEL_LEVELS, WHEEL_SPAN_NS};
pub use queue::{EventQueue, QueueKind, ScheduledEvent};
pub use tick::Ticker;
pub use time::{Duration, Time};

/// A façade bundling the current simulation time with the future-event list.
///
/// `Schedule` enforces the fundamental discrete-event invariant: time never
/// moves backwards, and events cannot be scheduled in the past.
#[derive(Debug, Clone)]
pub struct Schedule<E> {
    now: Time,
    queue: EventQueue<E>,
}

impl<E> Default for Schedule<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Schedule<E> {
    /// Creates an empty schedule with the clock at time zero, backed by
    /// the heap queue.
    pub fn new() -> Self {
        Self {
            now: Time::ZERO,
            queue: EventQueue::new(),
        }
    }

    /// Creates an empty schedule backed by the chosen queue
    /// implementation. `Schedule` never schedules into the past, so both
    /// kinds are always legal here; [`QueueKind::Bucket`] is the fast
    /// choice for event-dense simulations.
    pub fn with_kind(kind: QueueKind) -> Self {
        Self {
            now: Time::ZERO,
            queue: EventQueue::with_kind(kind),
        }
    }

    /// Current simulation time.
    #[inline]
    pub fn now(&self) -> Time {
        self.now
    }

    /// Number of pending events.
    #[inline]
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// True when no events are pending.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Schedules `event` to fire `delay` after the current time.
    pub fn after(&mut self, delay: Duration, event: E) {
        self.queue.schedule(self.now + delay, event);
    }

    /// Schedules `event` at the absolute instant `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the current time: scheduling into the
    /// past is always a simulator bug.
    pub fn at(&mut self, at: Time, event: E) {
        assert!(
            at >= self.now,
            "attempted to schedule an event at {at} but the clock is already at {now}",
            now = self.now
        );
        self.queue.schedule(at, event);
    }

    /// Schedules `event` at the absolute instant `at`, clamped to the
    /// current time: an instant already in the past becomes "now". This is
    /// the right call for externally supplied schedules (e.g. a fault
    /// timeline installed while a simulation is running) where a stale
    /// timestamp should mean "immediately", not a crash.
    pub fn at_or_now(&mut self, at: Time, event: E) {
        self.queue.schedule(at.max(self.now), event);
    }

    /// Removes and returns the next event, advancing the clock to its
    /// timestamp. Returns `None` when the event list is exhausted.
    ///
    /// Named `next` deliberately (the discrete-event idiom); `Schedule` is
    /// not an `Iterator` because firing an event mutates the clock.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Option<(Time, E)> {
        let (t, e) = self.queue.pop()?;
        debug_assert!(t >= self.now, "event queue yielded an event from the past");
        self.now = t;
        Some((t, e))
    }

    /// Peeks at the timestamp of the next pending event without firing it.
    pub fn peek_time(&self) -> Option<Time> {
        self.queue.peek_time()
    }

    /// Total number of events ever scheduled (monotone counter; useful for
    /// progress/watchdog diagnostics).
    pub fn scheduled_count(&self) -> u64 {
        self.queue.scheduled_count()
    }

    /// Constant-time occupancy snapshot of the backing queue (see
    /// [`EventQueue::occupancy`]).
    pub fn queue_occupancy(&self) -> bucket::QueueOccupancy {
        self.queue.occupancy()
    }

    /// Which queue implementation backs this schedule.
    pub fn queue_kind(&self) -> QueueKind {
        self.queue.kind()
    }

    /// Visits every pending event with its `(time, seq)` key (arbitrary
    /// order; see [`EventQueue::snapshot_each`]). Together with
    /// [`Schedule::now`] and [`Schedule::scheduled_count`] this is the
    /// schedule's complete observable state.
    pub fn snapshot_each(&self, f: impl FnMut(Time, u64, &E)) {
        self.queue.snapshot_each(f);
    }

    /// An empty schedule primed for restore: clock at `now`, sequence
    /// counter at `next_seq`, queue of the chosen kind ready for
    /// [`Schedule::insert_restored`]. Pending events always fire at or
    /// after the last popped instant, so `now` is a valid queue floor.
    pub fn restore_empty(kind: QueueKind, now: Time, next_seq: u64) -> Self {
        Self {
            now,
            queue: EventQueue::restore_empty(kind, now, next_seq),
        }
    }

    /// Re-files an event captured by [`Schedule::snapshot_each`] under its
    /// original sequence number, preserving exact pop order.
    pub fn insert_restored(&mut self, at: Time, seq: u64, event: E) {
        debug_assert!(at >= self.now, "restored event in the past");
        self.queue.insert_restored(at, seq, event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_advances_clock_monotonically() {
        let mut s: Schedule<u32> = Schedule::new();
        s.after(Duration::from_ns(5), 1);
        s.after(Duration::from_ns(3), 2);
        let (t1, e1) = s.next().unwrap();
        assert_eq!((t1, e1), (Time::from_ns(3), 2));
        assert_eq!(s.now(), Time::from_ns(3));
        let (t2, e2) = s.next().unwrap();
        assert_eq!((t2, e2), (Time::from_ns(5), 1));
        assert!(s.next().is_none());
        assert_eq!(s.now(), Time::from_ns(5), "clock stays at last event");
    }

    #[test]
    fn after_is_relative_to_current_time() {
        let mut s: Schedule<&str> = Schedule::new();
        s.after(Duration::from_ns(10), "first");
        s.next().unwrap();
        s.after(Duration::from_ns(10), "second");
        let (t, _) = s.next().unwrap();
        assert_eq!(t, Time::from_ns(20));
    }

    #[test]
    fn at_or_now_clamps_past_instants_to_now() {
        let mut s: Schedule<&str> = Schedule::new();
        s.at(Time::from_ns(10), "tick");
        s.next();
        // 5 ns is in the past; the event fires at the current time (10 ns),
        // after anything already queued for that instant.
        s.at_or_now(Time::from_ns(5), "stale");
        s.at_or_now(Time::from_ns(20), "future");
        let (t1, e1) = s.next().unwrap();
        assert_eq!((t1, e1), (Time::from_ns(10), "stale"));
        let (t2, e2) = s.next().unwrap();
        assert_eq!((t2, e2), (Time::from_ns(20), "future"));
    }

    #[test]
    #[should_panic(expected = "schedule an event at")]
    fn scheduling_in_the_past_panics() {
        let mut s: Schedule<()> = Schedule::new();
        s.at(Time::from_ns(10), ());
        s.next();
        s.at(Time::from_ns(5), ());
    }

    #[test]
    fn same_instant_events_fire_fifo() {
        let mut s: Schedule<u32> = Schedule::new();
        for i in 0..100 {
            s.at(Time::from_ns(42), i);
        }
        let fired: Vec<u32> = std::iter::from_fn(|| s.next()).map(|(_, e)| e).collect();
        assert_eq!(fired, (0..100).collect::<Vec<_>>());
    }
}
