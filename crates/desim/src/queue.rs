//! Deterministic future-event list.
//!
//! [`EventQueue`] guarantees FIFO delivery of events scheduled for the same
//! instant, independent of any internal (unspecified) ordering of equal
//! keys. Determinism matters here: wormhole-routing outcomes (which message
//! wins a channel) depend on event order, and the reproduction pins exact
//! results for seeded runs.
//!
//! Two interchangeable implementations live behind the one API, selected by
//! [`QueueKind`]:
//!
//! * [`QueueKind::Heap`] — a [`std::collections::BinaryHeap`] of
//!   `(time, seq)` keys. Fully general: events may be scheduled at any
//!   time, including before already-popped instants.
//! * [`QueueKind::Bucket`] — a hierarchical timing wheel
//!   ([`crate::bucket::BucketQueue`]) keyed directly on the integer
//!   nanosecond timestamp: O(1) array indexing instead of heap
//!   comparisons on the simulator's hot path. Requires the discrete-event
//!   clock invariant (never schedule before the last popped time), which
//!   [`crate::Schedule`] enforces anyway.
//!
//! Both produce identical pop sequences on any schedule a [`crate::Schedule`]
//! can express — property-tested in `tests/queue_properties.rs` and pinned
//! end-to-end by the workspace golden-regression suite.

use crate::bucket::{BucketQueue, QueueOccupancy};
use crate::time::Time;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An event tagged with its firing time and a tie-breaking sequence number.
#[derive(Debug, Clone)]
pub struct ScheduledEvent<E> {
    /// Absolute firing instant.
    pub time: Time,
    /// Monotone per-queue sequence number; earlier scheduling wins ties.
    pub seq: u64,
    /// The caller's payload.
    pub event: E,
}

impl<E> PartialEq for ScheduledEvent<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for ScheduledEvent<E> {}

impl<E> PartialOrd for ScheduledEvent<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for ScheduledEvent<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse ordering: BinaryHeap is a max-heap, we want the earliest
        // (time, seq) pair on top.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Which future-event-list implementation an [`EventQueue`] (or a
/// [`crate::Schedule`], or a simulator built on one) uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum QueueKind {
    /// Binary heap of `(time, seq)` keys — fully general.
    Heap,
    /// Hierarchical timing wheel keyed on the integer timestamp — the
    /// fast path for discrete-event use (monotone clock).
    #[default]
    Bucket,
}

impl QueueKind {
    /// The environment-selected kind: `WORMSIM_QUEUE=heap` (or `bucket` /
    /// `wheel`) picks the implementation for every simulator that did not
    /// choose one explicitly, so the whole test suite can be replayed on
    /// the reference heap without code changes. Unset or unrecognized
    /// values fall back to the default ([`QueueKind::Bucket`]).
    pub fn from_env() -> Self {
        match std::env::var("WORMSIM_QUEUE").as_deref() {
            Ok("heap") | Ok("Heap") | Ok("HEAP") => QueueKind::Heap,
            Ok("bucket") | Ok("wheel") | Ok("Bucket") => QueueKind::Bucket,
            _ => QueueKind::default(),
        }
    }
}

/// The classic comparison-based implementation.
#[derive(Debug, Clone)]
struct HeapQueue<E> {
    heap: BinaryHeap<ScheduledEvent<E>>,
    next_seq: u64,
}

impl<E> HeapQueue<E> {
    fn schedule(&mut self, time: Time, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(ScheduledEvent { time, seq, event });
    }
}

#[derive(Debug, Clone)]
enum Imp<E> {
    Heap(HeapQueue<E>),
    // Boxed: the wheel's slot tables are ~3 KB of inline arrays, and an
    // EventQueue should stay cheap to move.
    Bucket(Box<BucketQueue<E>>),
}

/// A priority queue of timestamped events with deterministic tie-breaking.
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    imp: Imp<E>,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty heap-backed queue (the fully general
    /// implementation; see [`Self::with_kind`] for the bucketed one).
    pub fn new() -> Self {
        Self::with_kind(QueueKind::Heap)
    }

    /// Creates an empty queue backed by the chosen implementation.
    pub fn with_kind(kind: QueueKind) -> Self {
        let imp = match kind {
            QueueKind::Heap => Imp::Heap(HeapQueue {
                heap: BinaryHeap::new(),
                next_seq: 0,
            }),
            QueueKind::Bucket => Imp::Bucket(Box::default()),
        };
        EventQueue { imp }
    }

    /// Creates an empty heap-backed queue with room for `cap` events
    /// before reallocating.
    pub fn with_capacity(cap: usize) -> Self {
        EventQueue {
            imp: Imp::Heap(HeapQueue {
                heap: BinaryHeap::with_capacity(cap),
                next_seq: 0,
            }),
        }
    }

    /// Which implementation backs this queue.
    pub fn kind(&self) -> QueueKind {
        match &self.imp {
            Imp::Heap(_) => QueueKind::Heap,
            Imp::Bucket(_) => QueueKind::Bucket,
        }
    }

    /// Schedules `event` to fire at absolute time `time`.
    ///
    /// On a [`QueueKind::Bucket`] queue, `time` must not precede the last
    /// popped timestamp (the discrete-event clock invariant).
    pub fn schedule(&mut self, time: Time, event: E) {
        match &mut self.imp {
            Imp::Heap(q) => q.schedule(time, event),
            Imp::Bucket(q) => q.schedule(time, event),
        }
    }

    /// Removes and returns the earliest event, FIFO among equal timestamps.
    pub fn pop(&mut self) -> Option<(Time, E)> {
        match &mut self.imp {
            Imp::Heap(q) => q.heap.pop().map(|s| (s.time, s.event)),
            Imp::Bucket(q) => q.pop(),
        }
    }

    /// Timestamp of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<Time> {
        match &self.imp {
            Imp::Heap(q) => q.heap.peek().map(|s| s.time),
            Imp::Bucket(q) => q.peek_time(),
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        match &self.imp {
            Imp::Heap(q) => q.heap.len(),
            Imp::Bucket(q) => q.len(),
        }
    }

    /// True when nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total number of events ever scheduled on this queue.
    pub fn scheduled_count(&self) -> u64 {
        match &self.imp {
            Imp::Heap(q) => q.next_seq,
            Imp::Bucket(q) => q.scheduled_count(),
        }
    }

    /// Constant-time occupancy snapshot for telemetry. A bucket queue
    /// reports occupied slots per wheel level plus its overflow list; a
    /// heap queue has no levels, so only `len` is populated.
    pub fn occupancy(&self) -> QueueOccupancy {
        match &self.imp {
            Imp::Heap(q) => QueueOccupancy {
                len: q.heap.len(),
                ..QueueOccupancy::default()
            },
            Imp::Bucket(q) => q.occupancy(),
        }
    }

    /// Drops all pending events (the sequence counter keeps advancing so
    /// determinism is preserved across a clear).
    pub fn clear(&mut self) {
        match &mut self.imp {
            Imp::Heap(q) => q.heap.clear(),
            Imp::Bucket(q) => q.clear(),
        }
    }

    /// Visits every pending event with its `(time, seq)` key, in an
    /// arbitrary order. Pop order is a pure function of `(time, seq)`, so
    /// this plus [`EventQueue::scheduled_count`] is the queue's complete
    /// observable state — what the snapshot layer persists.
    pub fn snapshot_each(&self, mut f: impl FnMut(Time, u64, &E)) {
        match &self.imp {
            Imp::Heap(q) => {
                for s in q.heap.iter() {
                    f(s.time, s.seq, &s.event);
                }
            }
            Imp::Bucket(q) => q.snapshot_each(|when, seq, e| f(Time::from_ns(when), seq, e)),
        }
    }

    /// An empty queue primed for restore: the chosen implementation with
    /// its clock floor (bucket) and sequence counter pre-set, ready for
    /// [`EventQueue::insert_restored`].
    pub fn restore_empty(kind: QueueKind, floor: Time, next_seq: u64) -> Self {
        let imp = match kind {
            QueueKind::Heap => Imp::Heap(HeapQueue {
                heap: BinaryHeap::new(),
                next_seq,
            }),
            QueueKind::Bucket => Imp::Bucket(Box::new(BucketQueue::restore_empty(
                floor.as_ns(),
                next_seq,
            ))),
        };
        EventQueue { imp }
    }

    /// Re-files an event captured by [`EventQueue::snapshot_each`] under
    /// its original sequence number, preserving exact pop order.
    pub fn insert_restored(&mut self, time: Time, seq: u64, event: E) {
        match &mut self.imp {
            Imp::Heap(q) => {
                debug_assert!(seq < q.next_seq, "restored seq beyond the counter");
                q.heap.push(ScheduledEvent { time, seq, event });
            }
            Imp::Bucket(q) => q.insert_restored(time.as_ns(), seq, event),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn both() -> [EventQueue<u32>; 2] {
        [
            EventQueue::with_kind(QueueKind::Heap),
            EventQueue::with_kind(QueueKind::Bucket),
        ]
    }

    #[test]
    fn pops_in_time_order() {
        for mut q in [
            EventQueue::with_kind(QueueKind::Heap),
            EventQueue::with_kind(QueueKind::Bucket),
        ] {
            q.schedule(Time::from_ns(50), 'c');
            q.schedule(Time::from_ns(20), 'a');
            q.schedule(Time::from_ns(30), 'b');
            assert_eq!(q.pop(), Some((Time::from_ns(20), 'a')));
            assert_eq!(q.pop(), Some((Time::from_ns(30), 'b')));
            assert_eq!(q.pop(), Some((Time::from_ns(50), 'c')));
            assert_eq!(q.pop(), None);
        }
    }

    #[test]
    fn equal_timestamps_are_fifo() {
        for mut q in both() {
            let t = Time::from_ns(7);
            for i in 0..1000u32 {
                q.schedule(t, i);
            }
            for i in 0..1000u32 {
                assert_eq!(q.pop(), Some((t, i)));
            }
        }
    }

    #[test]
    fn interleaved_schedule_and_pop_keeps_fifo_within_instant() {
        for mut q in both() {
            q.schedule(Time::from_ns(10), 1);
            q.schedule(Time::from_ns(10), 2);
            assert_eq!(q.pop().unwrap().1, 1);
            // Scheduling later at the same instant must come after 2.
            q.schedule(Time::from_ns(10), 3);
            assert_eq!(q.pop().unwrap().1, 2);
            assert_eq!(q.pop().unwrap().1, 3);
        }
    }

    #[test]
    fn peek_does_not_consume() {
        for mut q in both() {
            assert_eq!(q.peek_time(), None);
            q.schedule(Time::from_ns(3), 0);
            assert_eq!(q.peek_time(), Some(Time::from_ns(3)));
            assert_eq!(q.len(), 1);
            assert!(!q.is_empty());
        }
    }

    #[test]
    fn scheduled_count_is_monotone_across_clear() {
        for mut q in both() {
            q.schedule(Time::ZERO, 0);
            q.schedule(Time::ZERO, 1);
            q.clear();
            assert!(q.is_empty());
            assert_eq!(q.scheduled_count(), 2);
            q.schedule(Time::ZERO, 2);
            assert_eq!(q.scheduled_count(), 3);
        }
    }

    #[test]
    fn snapshot_restore_preserves_pop_order_mid_stream() {
        for kind in [QueueKind::Heap, QueueKind::Bucket] {
            // Build a queue with a mix of near, same-instant, cascaded and
            // overflow events, pop a few, then snapshot/restore and check
            // the remaining pop sequence is identical.
            let mut q = EventQueue::with_kind(kind);
            for i in 0..20u32 {
                q.schedule(Time::from_ns(40), i); // same-instant burst
            }
            q.schedule(Time::from_ns(10), 100);
            q.schedule(Time::from_ns(5000), 101); // coarser wheel level
            q.schedule(Time::from_ns(1 << 40), 102); // overflow
            for _ in 0..5 {
                q.pop().unwrap();
            }
            q.schedule(Time::from_ns(40), 103); // joins the burst late

            let mut reference = q.clone();
            let floor = q.peek_time().unwrap();
            let mut restored = EventQueue::restore_empty(kind, floor, q.scheduled_count());
            let mut pending = Vec::new();
            q.snapshot_each(|t, seq, &e| pending.push((t, seq, e)));
            // Deliberately insert in a scrambled order: restore must not
            // depend on insertion order.
            pending.reverse();
            for (t, seq, e) in pending {
                restored.insert_restored(t, seq, e);
            }
            assert_eq!(restored.len(), reference.len());
            assert_eq!(restored.scheduled_count(), reference.scheduled_count());
            loop {
                let (a, b) = (reference.pop(), restored.pop());
                assert_eq!(a, b, "kind {kind:?} diverged");
                if a.is_none() {
                    break;
                }
            }
        }
    }

    #[test]
    fn default_is_heap_and_kind_reports() {
        assert_eq!(EventQueue::<u32>::new().kind(), QueueKind::Heap);
        assert_eq!(
            EventQueue::<u32>::with_kind(QueueKind::Bucket).kind(),
            QueueKind::Bucket
        );
        assert_eq!(QueueKind::default(), QueueKind::Bucket);
    }
}
