//! Deterministic future-event list.
//!
//! A thin wrapper over [`std::collections::BinaryHeap`] that guarantees FIFO
//! delivery of events scheduled for the same instant, independent of the
//! heap's internal (unspecified) ordering of equal keys. Determinism matters
//! here: wormhole-routing outcomes (which message wins a channel) depend on
//! event order, and the reproduction pins exact results for seeded runs.

use crate::time::Time;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An event tagged with its firing time and a tie-breaking sequence number.
#[derive(Debug, Clone)]
pub struct ScheduledEvent<E> {
    /// Absolute firing instant.
    pub time: Time,
    /// Monotone per-queue sequence number; earlier scheduling wins ties.
    pub seq: u64,
    /// The caller's payload.
    pub event: E,
}

impl<E> PartialEq for ScheduledEvent<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for ScheduledEvent<E> {}

impl<E> PartialOrd for ScheduledEvent<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for ScheduledEvent<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse ordering: BinaryHeap is a max-heap, we want the earliest
        // (time, seq) pair on top.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A priority queue of timestamped events with deterministic tie-breaking.
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    heap: BinaryHeap<ScheduledEvent<E>>,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Creates an empty queue with room for `cap` events before reallocating.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            heap: BinaryHeap::with_capacity(cap),
            next_seq: 0,
        }
    }

    /// Schedules `event` to fire at absolute time `time`.
    pub fn schedule(&mut self, time: Time, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(ScheduledEvent { time, seq, event });
    }

    /// Removes and returns the earliest event, FIFO among equal timestamps.
    pub fn pop(&mut self) -> Option<(Time, E)> {
        self.heap.pop().map(|s| (s.time, s.event))
    }

    /// Timestamp of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<Time> {
        self.heap.peek().map(|s| s.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events ever scheduled on this queue.
    pub fn scheduled_count(&self) -> u64 {
        self.next_seq
    }

    /// Drops all pending events (the sequence counter keeps advancing so
    /// determinism is preserved across a clear).
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(Time::from_ns(50), 'c');
        q.schedule(Time::from_ns(20), 'a');
        q.schedule(Time::from_ns(30), 'b');
        assert_eq!(q.pop(), Some((Time::from_ns(20), 'a')));
        assert_eq!(q.pop(), Some((Time::from_ns(30), 'b')));
        assert_eq!(q.pop(), Some((Time::from_ns(50), 'c')));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn equal_timestamps_are_fifo() {
        let mut q = EventQueue::new();
        let t = Time::from_ns(7);
        for i in 0..1000u32 {
            q.schedule(t, i);
        }
        for i in 0..1000u32 {
            assert_eq!(q.pop(), Some((t, i)));
        }
    }

    #[test]
    fn interleaved_schedule_and_pop_keeps_fifo_within_instant() {
        let mut q = EventQueue::new();
        q.schedule(Time::from_ns(10), "x1");
        q.schedule(Time::from_ns(10), "x2");
        assert_eq!(q.pop().unwrap().1, "x1");
        // Scheduling later at the same instant must come after x2.
        q.schedule(Time::from_ns(10), "x3");
        assert_eq!(q.pop().unwrap().1, "x2");
        assert_eq!(q.pop().unwrap().1, "x3");
    }

    #[test]
    fn peek_does_not_consume() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.schedule(Time::from_ns(3), ());
        assert_eq!(q.peek_time(), Some(Time::from_ns(3)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn scheduled_count_is_monotone_across_clear() {
        let mut q = EventQueue::new();
        q.schedule(Time::ZERO, ());
        q.schedule(Time::ZERO, ());
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.scheduled_count(), 2);
        q.schedule(Time::ZERO, ());
        assert_eq!(q.scheduled_count(), 3);
    }
}
