//! A bucketed (hierarchical timing-wheel) future-event list keyed on the
//! integer nanosecond clock.
//!
//! The discrete-event loop of a saturating wormhole simulation schedules
//! almost exclusively near-future events (channel propagation 10 ns,
//! router setup 40 ns) and pops them in bursts at identical instants. A
//! comparison-based heap pays `O(log n)` pointer-chasing comparisons per
//! operation; this wheel pays an array index: an event lands in the slot
//! addressed by the bits of its timestamp, and the pop path finds the next
//! occupied slot with one `trailing_zeros` per level.
//!
//! Layout: [`LEVELS`] wheels of 64 slots each. Level `k` slots are
//! `64^k` ns wide, so level 0 resolves exact instants within the current
//! 64 ns window and the wheels together cover ~68 simulated seconds ahead
//! of the clock; anything farther sits in an overflow list that is folded
//! back in when the clock approaches (rare: once per 68 simulated
//! seconds). When a coarse slot comes due, its events *cascade* down into
//! finer wheels — each event cascades at most [`LEVELS`] times.
//!
//! Storage is a single entry pool with intrusive singly-linked slot
//! chains and a free list: slots hold `u32` chain heads, cascading relinks
//! pointers, and a popped entry's pool cell is recycled. The pool grows to
//! the maximum number of outstanding events and is then never touched by
//! the allocator again — the queue performs **zero heap allocations at
//! steady state**, which the workspace pins with a counting-allocator
//! test.
//!
//! Determinism contract (same as the heap queue): pops are globally
//! ordered by `(time, scheduling sequence)`, so same-instant events come
//! out FIFO. A level-0 slot holds exactly one instant; cascades can land
//! events there out of sequence order, so a slot is lazily re-sorted by
//! sequence number the first time it is popped after a cascade touched it
//! (direct schedules append in sequence order and never need the sort).
//!
//! One restriction the heap does not have: events must not be scheduled
//! before the last popped timestamp (`debug_assert`ed). The [`Schedule`]
//! facade already enforces exactly this clock invariant, and discrete-event
//! simulation is the only client.
//!
//! [`Schedule`]: crate::Schedule

use crate::time::Time;

/// A constant-time snapshot of where a [`BucketQueue`]'s pending events
/// sit: occupied slots per wheel level, overflow-list length, and the
/// total pending count. Heap-backed queues report the total only (their
/// levels are all zero) — see [`crate::EventQueue::occupancy`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct QueueOccupancy {
    /// Occupied (non-empty) slots per wheel level, finest first.
    pub levels: [u32; WHEEL_LEVELS],
    /// Events parked beyond the wheels' span.
    pub overflow: usize,
    /// Total pending events.
    pub len: usize,
}

/// Number of wheel levels.
const LEVELS: usize = 6;
/// log2(slots per level).
const BITS: u32 = 6;
/// Horizon of the wheel proper: an event scheduled at or beyond
/// `now + WHEEL_SPAN_NS` (more precisely, whose timestamp differs from the
/// clock above bit `LEVELS * BITS`) lands on the overflow list instead of
/// a slot. Exported so clients (the wormhole engine's coverage signals,
/// overflow-targeting tests) can reason about the boundary without
/// duplicating the wheel geometry.
pub const WHEEL_SPAN_NS: u64 = 1 << (LEVELS as u32 * BITS);
/// Number of wheel levels, exported for occupancy-snapshot consumers
/// (telemetry wants one gauge per level without guessing the geometry).
pub const WHEEL_LEVELS: usize = LEVELS;
/// Slots per level.
const SLOTS: usize = 1 << BITS;
/// Slot-index mask.
const MASK: u64 = (SLOTS - 1) as u64;
/// Null link in the intrusive chains.
const NIL: u32 = u32::MAX;

#[derive(Debug, Clone)]
struct PoolEntry<E> {
    when: u64,
    seq: u64,
    next: u32,
    /// `None` while the cell sits on the free list.
    val: Option<E>,
}

#[derive(Debug, Clone)]
struct Level {
    /// Bit `s` set ⇔ slot `s` non-empty.
    occupied: u64,
    /// Chain head per slot (pool index or [`NIL`]).
    head: [u32; SLOTS],
    /// Chain tail per slot, for O(1) FIFO append.
    tail: [u32; SLOTS],
}

impl Level {
    fn new() -> Self {
        Level {
            occupied: 0,
            head: [NIL; SLOTS],
            tail: [NIL; SLOTS],
        }
    }
}

/// A deterministic bucketed event queue. See the module docs; the API
/// mirrors [`crate::EventQueue`]'s heap implementation.
#[derive(Debug, Clone)]
pub struct BucketQueue<E> {
    levels: [Level; LEVELS],
    pool: Vec<PoolEntry<E>>,
    /// Free-list head into `pool`.
    free: u32,
    /// Pool indices of events beyond the wheels' span, in insertion order;
    /// folded back in on demand.
    overflow: Vec<u32>,
    /// Level-0 slots that a cascade touched since their last sort.
    dirty0: u64,
    /// Scratch for sorting a dirty slot (capacity retained).
    sort_scratch: Vec<(u64, u32)>,
    /// Monotone lower bound on every pending event (the last popped time).
    floor: u64,
    next_seq: u64,
    len: usize,
}

/// The wheel level an event `when` belongs to, given the current floor:
/// the highest 6-bit digit in which `when` and `floor` differ.
/// `>= LEVELS` means "beyond the wheels, use the overflow list".
#[inline]
fn level_for(floor: u64, when: u64) -> usize {
    let masked = when ^ floor;
    if masked < SLOTS as u64 {
        0
    } else {
        ((63 - masked.leading_zeros()) / BITS) as usize
    }
}

impl<E> BucketQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        BucketQueue {
            levels: std::array::from_fn(|_| Level::new()),
            pool: Vec::new(),
            free: NIL,
            overflow: Vec::new(),
            dirty0: 0,
            sort_scratch: Vec::new(),
            floor: 0,
            next_seq: 0,
            len: 0,
        }
    }

    /// Takes a pool cell for `(when, seq, event)` off the free list (or
    /// grows the pool) and returns its index.
    fn alloc_cell(&mut self, when: u64, seq: u64, event: E) -> u32 {
        if self.free != NIL {
            let idx = self.free;
            let cell = &mut self.pool[idx as usize];
            self.free = cell.next;
            cell.when = when;
            cell.seq = seq;
            cell.next = NIL;
            debug_assert!(cell.val.is_none());
            cell.val = Some(event);
            idx
        } else {
            let idx = u32::try_from(self.pool.len()).expect("pool capped at u32 cells");
            self.pool.push(PoolEntry {
                when,
                seq,
                next: NIL,
                val: Some(event),
            });
            idx
        }
    }

    /// Returns a popped cell to the free list and hands out its payload.
    fn free_cell(&mut self, idx: u32) -> (u64, E) {
        let cell = &mut self.pool[idx as usize];
        let when = cell.when;
        let val = cell.val.take().expect("freeing a live cell");
        cell.next = self.free;
        self.free = idx;
        (when, val)
    }

    /// Schedules `event` at absolute `time`.
    ///
    /// Must not be earlier than the last popped timestamp (the
    /// discrete-event clock invariant; `debug_assert`ed).
    pub fn schedule(&mut self, time: Time, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.len += 1;
        let idx = self.alloc_cell(time.as_ns(), seq, event);
        self.link(idx, false);
    }

    /// Files pool cell `idx` into the wheel (or overflow) for its `when`.
    #[inline]
    fn link(&mut self, idx: u32, from_cascade: bool) {
        let when = self.pool[idx as usize].when;
        debug_assert!(
            when >= self.floor,
            "event at {when} scheduled before the queue floor {}",
            self.floor
        );
        let lvl = level_for(self.floor, when);
        if lvl >= LEVELS {
            self.overflow.push(idx);
            return;
        }
        let slot = ((when >> (BITS * lvl as u32)) & MASK) as usize;
        self.pool[idx as usize].next = NIL;
        let level = &mut self.levels[lvl];
        if level.head[slot] == NIL {
            level.head[slot] = idx;
        } else {
            self.pool[level.tail[slot] as usize].next = idx;
        }
        level.tail[slot] = idx;
        level.occupied |= 1 << slot;
        if lvl == 0 && from_cascade {
            // Cascaded entries may arrive out of sequence order relative
            // to direct schedules already in the slot; sort lazily at pop.
            self.dirty0 |= 1 << slot;
        }
    }

    /// Removes and returns the earliest event, FIFO among equal
    /// timestamps.
    pub fn pop(&mut self) -> Option<(Time, E)> {
        if self.len == 0 {
            return None;
        }
        loop {
            // Fast path: an exact-instant slot in the current 64 ns window.
            if self.levels[0].occupied != 0 {
                let slot = self.levels[0].occupied.trailing_zeros() as usize;
                if self.dirty0 & (1 << slot) != 0 {
                    self.sort_slot(slot);
                }
                let idx = self.levels[0].head[slot];
                let next = self.pool[idx as usize].next;
                self.levels[0].head[slot] = next;
                if next == NIL {
                    self.levels[0].tail[slot] = NIL;
                    self.levels[0].occupied &= !(1 << slot);
                }
                let (when, e) = self.free_cell(idx);
                debug_assert!(when >= self.floor);
                self.floor = when;
                self.len -= 1;
                return Some((Time::from_ns(when), e));
            }
            if self.cascade_lowest() {
                continue;
            }
            self.refill_from_overflow();
        }
    }

    /// Re-sorts a level-0 slot chain by sequence number (stable FIFO
    /// order), using the retained scratch buffer.
    fn sort_slot(&mut self, slot: usize) {
        let mut scratch = std::mem::take(&mut self.sort_scratch);
        scratch.clear();
        let mut cur = self.levels[0].head[slot];
        while cur != NIL {
            let cell = &self.pool[cur as usize];
            scratch.push((cell.seq, cur));
            cur = cell.next;
        }
        scratch.sort_unstable();
        let mut head = NIL;
        let mut tail = NIL;
        for &(_, idx) in &scratch {
            if head == NIL {
                head = idx;
            } else {
                self.pool[tail as usize].next = idx;
            }
            tail = idx;
        }
        if tail != NIL {
            self.pool[tail as usize].next = NIL;
        }
        self.levels[0].head[slot] = head;
        self.levels[0].tail[slot] = tail;
        self.dirty0 &= !(1 << slot);
        self.sort_scratch = scratch;
    }

    /// Finds the lowest occupied coarse level, advances the floor to that
    /// slot's window, and redistributes its events into finer wheels.
    /// Returns false when all wheels are empty.
    fn cascade_lowest(&mut self) -> bool {
        for lvl in 1..LEVELS {
            if self.levels[lvl].occupied == 0 {
                continue;
            }
            let slot = self.levels[lvl].occupied.trailing_zeros() as usize;
            let width_bits = BITS * lvl as u32;
            // The absolute start of this slot's window under the current
            // floor's higher digits (no wrap: pending slots are never
            // below the floor's own index at their level).
            let slot_start =
                (self.floor & !((1u64 << (width_bits + BITS)) - 1)) | ((slot as u64) << width_bits);
            self.floor = self.floor.max(slot_start);
            let mut chain = self.levels[lvl].head[slot];
            self.levels[lvl].head[slot] = NIL;
            self.levels[lvl].tail[slot] = NIL;
            self.levels[lvl].occupied &= !(1 << slot);
            while chain != NIL {
                let next = self.pool[chain as usize].next;
                // Against the advanced floor every entry lands strictly
                // below `lvl`, so cascading terminates.
                debug_assert!(level_for(self.floor, self.pool[chain as usize].when) < lvl);
                self.link(chain, true);
                chain = next;
            }
            return true;
        }
        false
    }

    /// All wheels empty: jump the floor to the earliest overflow event and
    /// fold every overflow entry within the wheels' new span back in
    /// (stable, so same-instant overflow events stay in sequence order).
    fn refill_from_overflow(&mut self) {
        debug_assert!(!self.overflow.is_empty(), "len > 0 but nothing pending");
        let min_when = self
            .overflow
            .iter()
            .map(|&i| self.pool[i as usize].when)
            .min()
            .expect("overflow non-empty");
        debug_assert!(min_when >= self.floor);
        self.floor = min_when;
        // Stable in-place partition: fold near entries into the wheels,
        // compact the rest (no allocation).
        let mut kept = 0;
        for i in 0..self.overflow.len() {
            let idx = self.overflow[i];
            if level_for(self.floor, self.pool[idx as usize].when) >= LEVELS {
                self.overflow[kept] = idx;
                kept += 1;
            } else {
                self.link(idx, true);
            }
        }
        self.overflow.truncate(kept);
    }

    /// Timestamp of the earliest pending event, if any (non-destructive:
    /// coarse wheels are scanned, not cascaded).
    pub fn peek_time(&self) -> Option<Time> {
        if self.len == 0 {
            return None;
        }
        if self.levels[0].occupied != 0 {
            let slot = self.levels[0].occupied.trailing_zeros() as u64;
            return Some(Time::from_ns((self.floor & !MASK) | slot));
        }
        for lvl in 1..LEVELS {
            if self.levels[lvl].occupied == 0 {
                continue;
            }
            let slot = self.levels[lvl].occupied.trailing_zeros() as usize;
            let mut cur = self.levels[lvl].head[slot];
            let mut min = u64::MAX;
            while cur != NIL {
                let cell = &self.pool[cur as usize];
                min = min.min(cell.when);
                cur = cell.next;
            }
            return Some(Time::from_ns(min));
        }
        self.overflow
            .iter()
            .map(|&i| self.pool[i as usize].when)
            .min()
            .map(Time::from_ns)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total number of events ever scheduled on this queue.
    pub fn scheduled_count(&self) -> u64 {
        self.next_seq
    }

    /// Occupancy snapshot: the number of *occupied slots* per wheel level
    /// plus the overflow-list length. Constant time (one `count_ones` per
    /// level, no chain walks), so telemetry can sample it densely.
    pub fn occupancy(&self) -> QueueOccupancy {
        let mut levels = [0u32; LEVELS];
        for (k, level) in self.levels.iter().enumerate() {
            levels[k] = level.occupied.count_ones();
        }
        QueueOccupancy {
            levels,
            overflow: self.overflow.len(),
            len: self.len,
        }
    }

    /// Visits every pending event with its `(when, seq)` key, in pool
    /// order (arbitrary). Non-destructive: used by the snapshot layer,
    /// which re-sorts by `seq` — pop order is a pure function of
    /// `(time, seq)`, so the wheel's internal arrangement need not be
    /// serialized.
    pub fn snapshot_each(&self, mut f: impl FnMut(u64, u64, &E)) {
        for cell in &self.pool {
            if let Some(v) = &cell.val {
                f(cell.when, cell.seq, v);
            }
        }
    }

    /// The monotone floor (last popped timestamp).
    pub fn floor_ns(&self) -> u64 {
        self.floor
    }

    /// An empty queue whose floor and sequence counter are pre-set, ready
    /// to receive [`BucketQueue::insert_restored`] events.
    pub fn restore_empty(floor: u64, next_seq: u64) -> Self {
        let mut q = Self::new();
        q.floor = floor;
        q.next_seq = next_seq;
        q
    }

    /// Re-files an event captured by [`BucketQueue::snapshot_each`] under
    /// its original sequence number. Level-0 slots are marked dirty so the
    /// lazy seq-sort restores exact FIFO order regardless of insertion
    /// order; coarser slots and the overflow list are order-insensitive.
    pub fn insert_restored(&mut self, when: u64, seq: u64, event: E) {
        debug_assert!(when >= self.floor, "restored event below the floor");
        debug_assert!(seq < self.next_seq, "restored seq beyond the counter");
        self.len += 1;
        let idx = self.alloc_cell(when, seq, event);
        self.link(idx, true);
    }

    /// Drops all pending events (the sequence counter and the clock floor
    /// keep advancing so determinism is preserved across a clear).
    pub fn clear(&mut self) {
        for level in &mut self.levels {
            level.occupied = 0;
            level.head = [NIL; SLOTS];
            level.tail = [NIL; SLOTS];
        }
        self.pool.clear();
        self.free = NIL;
        self.overflow.clear();
        self.dirty0 = 0;
        self.len = 0;
    }
}

impl<E> Default for BucketQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = BucketQueue::new();
        q.schedule(Time::from_ns(50), 'c');
        q.schedule(Time::from_ns(20), 'a');
        q.schedule(Time::from_ns(30), 'b');
        assert_eq!(q.pop(), Some((Time::from_ns(20), 'a')));
        assert_eq!(q.pop(), Some((Time::from_ns(30), 'b')));
        assert_eq!(q.pop(), Some((Time::from_ns(50), 'c')));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn equal_timestamps_are_fifo() {
        let mut q = BucketQueue::new();
        let t = Time::from_ns(7);
        for i in 0..1000u32 {
            q.schedule(t, i);
        }
        for i in 0..1000u32 {
            assert_eq!(q.pop(), Some((t, i)));
        }
    }

    #[test]
    fn interleaved_schedule_and_pop_keeps_fifo_within_instant() {
        let mut q = BucketQueue::new();
        q.schedule(Time::from_ns(10), "x1");
        q.schedule(Time::from_ns(10), "x2");
        assert_eq!(q.pop().unwrap().1, "x1");
        // Scheduling later at the same instant must come after x2.
        q.schedule(Time::from_ns(10), "x3");
        assert_eq!(q.pop().unwrap().1, "x2");
        assert_eq!(q.pop().unwrap().1, "x3");
    }

    #[test]
    fn fifo_survives_a_cascade() {
        let mut q = BucketQueue::new();
        // Scheduled while 5000 is "far" (level >= 1), so it cascades...
        q.schedule(Time::from_ns(5000), "early-seq");
        q.schedule(Time::from_ns(4990), "advance");
        assert_eq!(q.pop().unwrap().1, "advance");
        // ... and this one lands directly in a fine slot first.
        q.schedule(Time::from_ns(5000), "late-seq");
        assert_eq!(q.pop().unwrap().1, "early-seq", "sequence order wins");
        assert_eq!(q.pop().unwrap().1, "late-seq");
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn far_future_goes_through_overflow_and_back() {
        let mut q = BucketQueue::new();
        let far = 1u64 << 40; // beyond the 2^36 ns wheel span
        q.schedule(Time::from_ns(far + 3), 1);
        q.schedule(Time::from_ns(far), 0);
        q.schedule(Time::from_ns(5), 99);
        assert_eq!(q.pop(), Some((Time::from_ns(5), 99)));
        assert_eq!(q.pop(), Some((Time::from_ns(far), 0)));
        assert_eq!(q.pop(), Some((Time::from_ns(far + 3), 1)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn same_instant_overflow_events_stay_fifo() {
        let mut q = BucketQueue::new();
        let far = (1u64 << 38) + 123;
        for i in 0..10u32 {
            q.schedule(Time::from_ns(far), i);
        }
        for i in 0..10u32 {
            assert_eq!(q.pop(), Some((Time::from_ns(far), i)));
        }
    }

    #[test]
    fn peek_does_not_consume_and_matches_pop() {
        let mut q = BucketQueue::new();
        assert_eq!(q.peek_time(), None);
        q.schedule(Time::from_ns(70_000), ());
        q.schedule(Time::from_ns(3), ());
        assert_eq!(q.peek_time(), Some(Time::from_ns(3)));
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop().unwrap().0, Time::from_ns(3));
        assert_eq!(q.peek_time(), Some(Time::from_ns(70_000)));
        assert_eq!(q.pop().unwrap().0, Time::from_ns(70_000));
        assert!(q.is_empty());
    }

    #[test]
    fn scheduled_count_is_monotone_across_clear() {
        let mut q = BucketQueue::new();
        q.schedule(Time::ZERO, ());
        q.schedule(Time::from_ns(1 << 37), ());
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.scheduled_count(), 2);
        q.schedule(Time::ZERO, ());
        assert_eq!(q.scheduled_count(), 3);
        assert_eq!(q.pop().unwrap().0, Time::ZERO);
    }

    #[test]
    fn pool_cells_are_recycled() {
        let mut q = BucketQueue::new();
        for round in 0..50u64 {
            for i in 0..8u64 {
                q.schedule(Time::from_ns(round * 100 + i), (round, i));
            }
            for _ in 0..8 {
                q.pop().unwrap();
            }
        }
        // 8 outstanding at a time -> the pool never grew past 8 cells.
        assert!(q.pool.len() <= 8, "pool grew to {}", q.pool.len());
    }

    #[test]
    fn occupancy_tracks_levels_and_overflow() {
        let mut q = BucketQueue::new();
        assert_eq!(q.occupancy(), QueueOccupancy::default());
        q.schedule(Time::from_ns(1), 'a'); // level 0
        q.schedule(Time::from_ns(2), 'b'); // level 0, distinct slot
        q.schedule(Time::from_ns(5000), 'c'); // coarser level
        q.schedule(Time::from_ns(1 << 40), 'd'); // beyond the span
        let occ = q.occupancy();
        assert_eq!(occ.len, 4);
        assert_eq!(occ.levels[0], 2);
        assert_eq!(occ.levels.iter().sum::<u32>(), 3);
        assert_eq!(occ.overflow, 1);
        while q.pop().is_some() {}
        let drained = q.occupancy();
        assert_eq!(drained.len, 0);
        assert_eq!(drained.overflow, 0);
        assert_eq!(drained.levels, [0; WHEEL_LEVELS]);
    }

    #[test]
    fn dense_simulation_like_stream_stays_sorted() {
        // Mimic the engine: pop one, schedule a few at +10/+40/+10_000.
        let mut q = BucketQueue::new();
        q.schedule(Time::from_ns(0), 0u64);
        let mut seq = 1u64;
        let mut popped = Vec::new();
        while let Some((t, id)) = q.pop() {
            popped.push((t.as_ns(), id));
            if seq < 300 {
                for d in [10, 40, 10_000] {
                    q.schedule(Time::from_ns(t.as_ns() + d), seq);
                    seq += 1;
                }
            }
        }
        let mut expect = popped.clone();
        expect.sort_by_key(|&(t, _)| t); // stable: FIFO among equal times
        assert_eq!(popped, expect);
        assert_eq!(popped.len() as u64, q.scheduled_count());
    }
}
