//! Fault models: which components die, sampled deterministically.
//!
//! Each model is a pure function of `(topology, seed)` — the same seed
//! always kills the same components, which is what makes fault sweeps
//! replicable and lets SPAM and baseline runs see *identical* damage.

use netgraph::gen::lattice::LatticeLayout;
use netgraph::{ChannelId, DegradedTopology, NodeId, Topology};
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// A stochastic fault model over a topology.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultModel {
    /// Every bidirectional link dies independently with probability
    /// `rate` — the classic i.i.d. wire/connector failure model. Includes
    /// processor links: a NOW loses hosts as well as cables.
    IidLinks {
        /// Per-link death probability in `[0, 1]`.
        rate: f64,
    },
    /// Every switch dies independently with probability `rate`, taking
    /// all incident channels (and stranding its processor).
    IidSwitches {
        /// Per-switch death probability in `[0, 1]`.
        rate: f64,
    },
    /// Spatially correlated damage on the §4 lattice: a uniformly chosen
    /// center switch and every switch within Manhattan distance `radius`
    /// of it die — a failed rack, power zone, or machine-room region.
    /// Requires the generator's [`LatticeLayout`].
    Region {
        /// Manhattan radius of the dead zone (0 = one switch).
        radius: usize,
    },
}

/// A concrete set of deaths: the output of sampling a [`FaultModel`],
/// or hand-built for scripted scenarios and regression pins.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Dead links, each named by its even (forward) channel id.
    pub links: Vec<ChannelId>,
    /// Dead switches (each kills its incident links too).
    pub switches: Vec<NodeId>,
}

impl FaultModel {
    /// Samples a concrete [`FaultPlan`]. Pure in `(topo, seed)`; `layout`
    /// is required by [`FaultModel::Region`] and ignored otherwise.
    ///
    /// # Panics
    ///
    /// Panics if a rate is outside `[0, 1]`, or if `Region` is sampled
    /// without a layout.
    pub fn sample(&self, topo: &Topology, layout: Option<&LatticeLayout>, seed: u64) -> FaultPlan {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        match *self {
            FaultModel::IidLinks { rate } => {
                assert!((0.0..=1.0).contains(&rate), "rate must be a probability");
                let links = (0..topo.num_channels())
                    .step_by(2)
                    .map(|i| ChannelId(i as u32))
                    .filter(|_| rng.gen_bool(rate))
                    .collect();
                FaultPlan {
                    links,
                    switches: Vec::new(),
                }
            }
            FaultModel::IidSwitches { rate } => {
                assert!((0.0..=1.0).contains(&rate), "rate must be a probability");
                let switches = topo.switches().filter(|_| rng.gen_bool(rate)).collect();
                FaultPlan {
                    links: Vec::new(),
                    switches,
                }
            }
            FaultModel::Region { radius } => {
                let layout = layout.expect("Region faults need the generator's LatticeLayout");
                let switches: Vec<NodeId> = topo.switches().collect();
                let center = *switches.choose(&mut rng).expect("topology has a switch");
                let dead = switches
                    .into_iter()
                    .filter(|&s| layout.manhattan(center, s) <= radius)
                    .collect();
                FaultPlan {
                    links: Vec::new(),
                    switches: dead,
                }
            }
        }
    }
}

impl FaultPlan {
    /// True when nothing dies.
    pub fn is_empty(&self) -> bool {
        self.links.is_empty() && self.switches.is_empty()
    }

    /// Applies the plan to `base`, returning the masked view.
    pub fn apply<'a>(&self, base: &'a Topology) -> DegradedTopology<'a> {
        let mut d = DegradedTopology::new(base);
        for &c in &self.links {
            d.kill_link(c);
        }
        for &s in &self.switches {
            d.kill_switch(s);
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netgraph::gen::lattice::IrregularConfig;

    #[test]
    fn sampling_is_deterministic_in_the_seed() {
        let topo = IrregularConfig::with_switches(48).generate(3);
        let m = FaultModel::IidLinks { rate: 0.2 };
        assert_eq!(m.sample(&topo, None, 9), m.sample(&topo, None, 9));
        assert_ne!(m.sample(&topo, None, 9), m.sample(&topo, None, 10));
    }

    #[test]
    fn zero_and_one_rates_are_degenerate() {
        let topo = IrregularConfig::with_switches(24).generate(1);
        let none = FaultModel::IidLinks { rate: 0.0 }.sample(&topo, None, 5);
        assert!(none.is_empty());
        let all = FaultModel::IidLinks { rate: 1.0 }.sample(&topo, None, 5);
        assert_eq!(all.links.len(), topo.num_channels() / 2);
        let every_switch = FaultModel::IidSwitches { rate: 1.0 }.sample(&topo, None, 5);
        assert_eq!(every_switch.switches.len(), topo.num_switches());
    }

    #[test]
    fn iid_link_rate_is_roughly_respected() {
        let topo = IrregularConfig::with_switches(128).generate(2);
        let n_links = topo.num_channels() / 2;
        let mut total = 0usize;
        for seed in 0..20 {
            total += FaultModel::IidLinks { rate: 0.25 }
                .sample(&topo, None, seed)
                .links
                .len();
        }
        let mean = total as f64 / 20.0 / n_links as f64;
        assert!((0.15..0.35).contains(&mean), "empirical rate {mean}");
    }

    #[test]
    fn region_fault_kills_a_lattice_ball() {
        let (topo, layout) = IrregularConfig::with_switches(64).generate_with_layout(11);
        let plan = FaultModel::Region { radius: 2 }.sample(&topo, Some(&layout), 4);
        assert!(!plan.switches.is_empty());
        // The dead set is a Manhattan ball: every pair is within 2*radius.
        for &a in &plan.switches {
            for &b in &plan.switches {
                assert!(layout.manhattan(a, b) <= 4);
            }
        }
        // Radius 0 kills exactly one switch.
        let one = FaultModel::Region { radius: 0 }.sample(&topo, Some(&layout), 4);
        assert_eq!(one.switches.len(), 1);
    }

    #[test]
    fn apply_reflects_the_plan() {
        let topo = IrregularConfig::with_switches(32).generate(6);
        let plan = FaultModel::IidLinks { rate: 0.3 }.sample(&topo, None, 1);
        let d = plan.apply(&topo);
        for &c in &plan.links {
            assert!(!d.is_channel_alive(c));
            assert!(!d.is_channel_alive(topo.reverse(c)));
        }
        assert_eq!(
            d.num_alive_channels(),
            topo.num_channels() - 2 * plan.links.len()
        );
    }

    #[test]
    #[should_panic(expected = "LatticeLayout")]
    fn region_without_layout_panics() {
        let topo = IrregularConfig::with_switches(16).generate(0);
        FaultModel::Region { radius: 1 }.sample(&topo, None, 0);
    }
}
