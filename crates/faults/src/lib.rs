#![warn(missing_docs)]

//! # spam-faults — fault injection and reconfiguration for SPAM networks
//!
//! SPAM's deadlock-freedom rests on the up*/down* channel partition of
//! Schroeder et al.'s **Autonet** — a network whose defining feature was
//! *automatic reconfiguration after component failure*. This crate closes
//! that loop for the reproduction: it injects faults into the paper's §4
//! irregular networks and rebuilds everything SPAM needs on what survives,
//! so the routing theorems can be exercised (and benchmarked) on degraded
//! topologies, not just pristine ones.
//!
//! Pipeline:
//!
//! 1. **Sample** a [`FaultPlan`] from a seeded [`FaultModel`] — i.i.d.
//!    link kills, i.i.d. switch kills (a dead switch takes every incident
//!    channel with it), or a spatially correlated [`FaultModel::Region`]
//!    on the §4 lattice (a failed rack/power zone takes out *adjacent*
//!    switches, via [`netgraph::gen::lattice::LatticeLayout`]).
//! 2. **Degrade**: apply the plan to a [`netgraph::DegradedTopology`] and
//!    materialize the surviving subgraph *without renumbering nodes*.
//! 3. **Reconfigure**: split the survivors into connected components and
//!    rebuild an up*/down* labeling per component
//!    ([`updown::UpDownLabeling::build_partial`]), re-selecting the root
//!    when the old one died. Theorem 1's preconditions hold per component,
//!    so SPAM remains deadlock- and livelock-free on every surviving
//!    island — the property the extended test suites verify.
//!
//! ```
//! use netgraph::gen::lattice::IrregularConfig;
//! use spam_faults::{DegradedNetwork, FaultModel};
//!
//! let (topo, layout) = IrregularConfig::with_switches(64).generate_with_layout(7);
//! let plan = FaultModel::IidLinks { rate: 0.15 }.sample(&topo, Some(&layout), 42);
//! let net = DegradedNetwork::build(&topo, &plan, None);
//! let main = net.largest().expect("something survived");
//! assert!(main.labeling.is_labeled(main.root));
//! assert!(net.topo.num_channels() <= topo.num_channels());
//! ```

pub mod degrade;
pub mod model;

pub use degrade::{ComponentNet, DegradedNetwork};
pub use model::{FaultModel, FaultPlan};
