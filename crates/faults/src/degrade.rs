//! Reconfiguration: from a fault plan to routable surviving components.
//!
//! The Autonet recipe, reproduced: after faults, every surviving
//! connected component re-runs the up*/down* labeling from a (possibly
//! re-selected) root. Because each component is connected and its
//! labeling satisfies the Theorem 1 preconditions, SPAM stays deadlock-
//! and livelock-free *within* every component; destinations outside a
//! sender's component are unreachable by any routing algorithm and must
//! be dropped from destination sets.

use netgraph::{ChannelId, NodeId, Topology};
use updown::UpDownLabeling;

use crate::model::FaultPlan;

/// One surviving connected component, relabeled and ready to route.
#[derive(Debug, Clone)]
pub struct ComponentNet {
    /// Member nodes (switches and processors), ascending.
    pub nodes: Vec<NodeId>,
    /// The spanning-tree root chosen for this component.
    pub root: NodeId,
    /// Partial up*/down* labeling of the masked topology covering exactly
    /// this component.
    pub labeling: UpDownLabeling,
}

impl ComponentNet {
    /// True when `n` survived into this component.
    pub fn contains(&self, n: NodeId) -> bool {
        self.nodes.binary_search(&n).is_ok()
    }

    /// The component's processors, ascending — the valid sources and
    /// destinations for traffic on this island.
    pub fn processors(&self, topo: &Topology) -> Vec<NodeId> {
        self.nodes
            .iter()
            .copied()
            .filter(|&n| topo.is_processor(n))
            .collect()
    }

    /// Number of member switches.
    pub fn num_switches(&self, topo: &Topology) -> usize {
        self.nodes.iter().filter(|&&n| topo.is_switch(n)).count()
    }
}

/// A degraded network after reconfiguration: the masked topology (node
/// ids preserved from the base) plus every surviving component with its
/// rebuilt labeling.
#[derive(Debug, Clone)]
pub struct DegradedNetwork {
    /// The surviving subgraph. Node ids match the base topology; dead
    /// nodes are present but isolated. Channel ids are recompacted.
    pub topo: Topology,
    /// `base channel id → masked channel id` (`None` for dead channels).
    pub channel_map: Vec<Option<ChannelId>>,
    /// Surviving components, largest first, each relabeled.
    pub components: Vec<ComponentNet>,
}

impl DegradedNetwork {
    /// Applies `plan` to `base` and reconfigures every surviving
    /// component.
    ///
    /// Root re-selection: a component keeps `preferred_root` (the
    /// pre-fault root, if the caller had one) when that switch survived
    /// into it; every other component — including all of them when the
    /// old root died — gets its lowest-id surviving switch, matching the
    /// deterministic [`updown::RootSelection::LowestId`] policy.
    pub fn build(base: &Topology, plan: &FaultPlan, preferred_root: Option<NodeId>) -> Self {
        let view = plan.apply(base);
        let (topo, channel_map) = view.masked_topology();
        let components = view
            .components()
            .into_iter()
            .filter_map(|nodes| {
                let root = match preferred_root {
                    Some(r) if nodes.binary_search(&r).is_ok() => r,
                    _ => nodes.iter().copied().find(|&n| topo.is_switch(n))?,
                };
                let labeling = UpDownLabeling::build_partial(&topo, root);
                debug_assert_eq!(labeling.num_labeled(), nodes.len());
                Some(ComponentNet {
                    nodes,
                    root,
                    labeling,
                })
            })
            .collect();
        DegradedNetwork {
            topo,
            channel_map,
            components,
        }
    }

    /// The largest surviving component (most nodes; ties broken by the
    /// smallest member id), or `None` if nothing survived.
    pub fn largest(&self) -> Option<&ComponentNet> {
        self.components.first()
    }

    /// The component containing `n`, if `n` survived.
    pub fn component_of(&self, n: NodeId) -> Option<&ComponentNet> {
        self.components.iter().find(|c| c.contains(n))
    }

    /// Fraction of the base topology's nodes that survived into the
    /// largest component — the headline resilience number of a fault
    /// scenario.
    pub fn largest_component_fraction(&self, base: &Topology) -> f64 {
        self.largest()
            .map(|c| c.nodes.len() as f64 / base.num_nodes() as f64)
            .unwrap_or(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::FaultModel;
    use netgraph::gen::lattice::IrregularConfig;
    use updown::{check_acyclic_subnetworks, RootSelection};

    #[test]
    fn pristine_plan_reproduces_the_base_labeling() {
        let base = IrregularConfig::with_switches(32).generate(4);
        let ud = UpDownLabeling::build(&base, RootSelection::LowestId);
        let net = DegradedNetwork::build(&base, &FaultPlan::default(), Some(ud.root()));
        assert_eq!(net.components.len(), 1);
        let c = net.largest().unwrap();
        assert_eq!(c.root, ud.root());
        assert_eq!(c.nodes.len(), base.num_nodes());
        assert_eq!(net.topo.num_channels(), base.num_channels());
        // Identical channel order → identical classes.
        for ch in base.channel_ids() {
            assert_eq!(net.channel_map[ch.index()], Some(ch));
            assert_eq!(c.labeling.class(ch), ud.class(ch));
        }
    }

    #[test]
    fn dead_root_triggers_reselection() {
        let base = IrregularConfig::with_switches(32).generate(4);
        let old_root = UpDownLabeling::build(&base, RootSelection::LowestId).root();
        let plan = FaultPlan {
            links: Vec::new(),
            switches: vec![old_root],
        };
        let net = DegradedNetwork::build(&base, &plan, Some(old_root));
        for c in &net.components {
            assert_ne!(c.root, old_root);
            assert!(net.topo.is_switch(c.root));
            assert!(c.contains(c.root));
        }
    }

    #[test]
    fn components_partition_survivors_and_are_internally_connected() {
        let base = IrregularConfig::with_switches(64).generate(9);
        let plan = FaultModel::IidLinks { rate: 0.3 }.sample(&base, None, 17);
        let net = DegradedNetwork::build(&base, &plan, None);
        let mut seen = vec![false; base.num_nodes()];
        for c in &net.components {
            for &n in &c.nodes {
                assert!(!seen[n.index()], "{n} in two components");
                seen[n.index()] = true;
                assert!(c.labeling.is_labeled(n));
            }
            // Theorem 1 preconditions hold on the component's labeling.
            assert!(check_acyclic_subnetworks(&net.topo, &c.labeling).all_ok());
        }
        // Survivors of the masked topology = nodes with alive links.
        for n in net.topo.nodes() {
            let in_component = seen[n.index()];
            assert_eq!(net.topo.degree(n) > 0, in_component, "{n}");
            assert_eq!(net.component_of(n).is_some(), in_component);
        }
    }

    #[test]
    fn largest_component_fraction_shrinks_with_damage() {
        let base = IrregularConfig::with_switches(64).generate(2);
        let light = FaultModel::IidLinks { rate: 0.05 }.sample(&base, None, 3);
        let heavy = FaultModel::IidLinks { rate: 0.5 }.sample(&base, None, 3);
        let f_light = DegradedNetwork::build(&base, &light, None).largest_component_fraction(&base);
        let f_heavy = DegradedNetwork::build(&base, &heavy, None).largest_component_fraction(&base);
        assert!(f_light > f_heavy);
        assert!(f_light > 0.8, "5% link faults keep most of the network");
    }

    #[test]
    fn region_fault_components_exclude_the_dead_zone() {
        let (base, layout) = IrregularConfig::with_switches(64).generate_with_layout(5);
        let plan = FaultModel::Region { radius: 1 }.sample(&base, Some(&layout), 8);
        let net = DegradedNetwork::build(&base, &plan, None);
        for c in &net.components {
            for &s in &plan.switches {
                assert!(!c.contains(s));
            }
        }
        // Every dead switch strands its processor.
        for &s in &plan.switches {
            let p = base.processor_of(s).unwrap();
            assert!(net.component_of(p).is_none());
        }
    }
}
