//! Declarative scenarios end to end: load a committed `*.scenario.json`
//! file, run it, then build a variant programmatically and run that —
//! no bespoke experiment binary in sight.
//!
//! ```text
//! cargo run --release --example scenario_runner
//! ```

use spam_net::scenario::{self, FaultModelSpec, FaultsSpec, ScenarioSpec};

fn print_report(report: &scenario::ScenarioReport) {
    let (d, t, u) = report.totals();
    println!(
        "  {}: {} replication(s), delivered {d}, torn down {t}, unreachable {u}",
        report.name,
        report.reps.len()
    );
    for r in &report.reps {
        println!(
            "    rep {}: mean {} µs, p99 {} µs, {} events, clean: {}",
            r.rep,
            r.mean_latency_us.map_or("-".into(), |x| format!("{x:.3}")),
            r.p99_us.map_or("-".into(), |x| format!("{x:.3}")),
            r.events,
            r.clean
        );
    }
}

fn main() {
    // 1. A committed corpus file is a complete experiment: parse, validate,
    //    run. (Paths are relative to the workspace root.)
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("scenarios");
    let file = dir.join("fig3_mixed_negbinomial.scenario.json");
    let text = std::fs::read_to_string(&file).expect("read corpus file");
    let spec = ScenarioSpec::from_json(&text).expect("decode");
    spec.validate().expect("validate");
    println!("loaded {}:", file.display());
    println!("  \"{}\"", spec.description);
    let report = scenario::run_spec(&spec).expect("run");
    print_report(&report);

    // 2. Specs are plain data — derive a variant in code: the same
    //    traffic, but 15% of links die in two mid-run bursts.
    let mut stormy = spec.clone();
    stormy.name = "fig3_under_a_storm".into();
    stormy.faults = FaultsSpec::Storm {
        model: FaultModelSpec::IidLinks { rate: 0.15 },
        seed: 4,
        window_start_us: 30,
        window_end_us: 90,
        bursts: 2,
    };
    println!("\nderived variant (as JSON it would be):");
    let json = stormy.to_json_string();
    println!(
        "{}",
        json.lines()
            .take(6)
            .map(|l| format!("  {l}"))
            .collect::<Vec<_>>()
            .join("\n")
    );
    println!("  ... ({} lines total)", json.lines().count());
    let report = scenario::run_spec(&stormy).expect("run variant");
    print_report(&report);

    // 3. Malformed specs are typed diagnostics, not panics.
    let mut bad = spec;
    bad.traffic = scenario::TrafficSpec::SingleMulticast {
        dests: 500,
        len: 128,
    };
    println!("\nan impossible spec is a typed error:");
    println!("  {}", scenario::run_spec(&bad).unwrap_err());
}
