//! Live reconfiguration: a fault storm strikes a paper-style network
//! *while multicast traffic is in flight*. Worms caught holding dead
//! channels are torn down (reservations released, request queues
//! flushed), the surviving fabric relabels itself incrementally after
//! every burst — Autonet's online story — and traffic submitted after a
//! burst routes on the new epoch's labeling while old-epoch survivors
//! drain.
//!
//! ```text
//! cargo run --example live_reconfiguration --release
//! ```

use spam_net::prelude::*;

fn main() {
    // 1. A pristine 64-switch NOW under a steady multicast load: one
    //    8-destination multicast every 2 µs for 100 µs.
    let topo = IrregularConfig::with_switches(64).generate(2024);
    let ud = UpDownLabeling::build(&topo, RootSelection::LowestId);
    let procs: Vec<NodeId> = topo.processors().collect();
    println!(
        "pristine: {} switches, {} channels, root {}",
        topo.num_switches(),
        topo.num_channels(),
        ud.root()
    );

    // 2. The storm: 15 % of all links die in three bursts between 25 µs
    //    and 75 µs — squarely inside the traffic window. Same seeded
    //    fault model as the static sweeps; the schedule only adds *when*.
    let storm = FaultSchedule::storm(
        &FaultModel::IidLinks { rate: 0.15 },
        &topo,
        None,
        (Time::from_us(25), Time::from_us(75)),
        3,
        7,
    );
    println!(
        "storm: {} link deaths in {} burst(s) at {:?}",
        storm.len(),
        storm.fault_times().len(),
        storm
            .fault_times()
            .iter()
            .map(|t| t.as_us_f64())
            .collect::<Vec<_>>()
    );

    // 3. The epoch chain: relabel the survivors at every burst,
    //    incrementally — the surviving spanning-tree structure is kept,
    //    only orphaned subtrees reattach.
    let scenario = ReconfigScenario::build(&topo, &ud, &storm);
    for (i, rep) in scenario.reports().iter().enumerate() {
        println!(
            "  epoch {} -> {}: kept {} tree edges, reattached {} nodes, \
             {} channel labels changed{}",
            i,
            i + 1,
            rep.kept_tree_edges,
            rep.reattached_nodes,
            rep.changed_channels,
            if rep.full_rebuild {
                " (root died: full rebuild)"
            } else {
                ""
            }
        );
    }

    // 4. Run the storm over live traffic. Messages generated at or after
    //    a burst route on the new labeling; in-flight worms that held a
    //    dying channel are torn down with a typed per-message error.
    let routing = scenario.routing(&topo);
    let mut sim = NetworkSim::new(&topo, routing, SimConfig::paper());
    storm.install(&mut sim);
    let mut rng_state = 0x5EEDu64;
    let mut next = || {
        // Tiny deterministic LCG — good enough to spread sources around.
        rng_state = rng_state.wrapping_mul(6364136223846793005).wrapping_add(1);
        (rng_state >> 33) as usize
    };
    for i in 0..50u64 {
        let src = procs[next() % procs.len()];
        let dests: Vec<NodeId> = (0..8)
            .map(|_| procs[next() % procs.len()])
            .filter(|&d| d != src)
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .collect();
        if dests.is_empty() {
            continue;
        }
        sim.submit(MessageSpec::multicast(src, dests, 64).at(Time::from_us(2 * i)))
            .unwrap();
    }
    let out = sim.run();
    assert!(out.all_accounted(), "every message must end with a verdict");

    // 5. Per-epoch accounting: the transient, quantified.
    println!(
        "\nrun: {} delivered, {} torn down, {} unreachable of {} messages \
         ({} links killed)",
        out.counters.messages_completed,
        out.counters.messages_torn_down,
        out.counters.messages_unreachable,
        out.messages.len(),
        out.counters.links_killed,
    );
    println!(
        "  {:<6} {:>9} {:>9} {:>5} {:>8} {:>12}",
        "epoch", "submitted", "delivered", "torn", "unreach", "latency (µs)"
    );
    for s in out.epoch_stats() {
        println!(
            "  {:<6} {:>9} {:>9} {:>5} {:>8} {:>12}",
            s.epoch,
            s.submitted,
            s.delivered,
            s.torn_down,
            s.unreachable,
            s.mean_latency_us
                .map(|l| format!("{l:.2}"))
                .unwrap_or_else(|| "-".into()),
        );
    }
    // A torn-down worm reports *where* it died.
    if let Some(m) = out.messages.iter().find(|m| m.is_torn_down()) {
        let f = m.failure.unwrap();
        println!(
            "\nexample casualty: \"{}\" at {:.2} µs",
            f.error,
            f.at.as_us_f64()
        );
    }
}
