//! Barrier synchronization — one of the motivating applications in the
//! paper's introduction ("efficient multicast communication is essential
//! in ... barrier synchronization").
//!
//! A barrier has two halves: a **gather** (every participant signals the
//! coordinator) and a **release broadcast** (the coordinator tells
//! everyone to proceed). The release is a textbook multicast; this example
//! measures the full barrier with the release implemented as
//!
//! 1. a single SPAM multi-head worm (one startup), versus
//! 2. software multicast: a binomial tree of unicasts (⌈log₂(d+1)⌉
//!    startups on the critical path).
//!
//! ```text
//! cargo run --example barrier_synchronization --release
//! ```

use spam_net::prelude::*;
use wormsim::{CompletionHook, MsgId};

/// Gathers arrivals at the coordinator; when the last one lands, releases
/// the barrier with a single SPAM broadcast.
struct SpamBarrier {
    coordinator: NodeId,
    waiting: usize,
    participants: Vec<NodeId>,
    release_tag: u64,
}

impl CompletionHook for SpamBarrier {
    fn on_complete(&mut self, _m: MsgId, spec: &MessageSpec, at: Time) -> Vec<MessageSpec> {
        if spec.dests == [self.coordinator] {
            self.waiting -= 1;
            if self.waiting == 0 {
                return vec![MessageSpec::multicast(
                    self.coordinator,
                    self.participants.clone(),
                    8, // short control message
                )
                .at(at)
                .tag(self.release_tag)];
            }
        }
        Vec::new()
    }
}

fn barrier_with_spam(topo: &netgraph::Topology, ud: &UpDownLabeling) -> f64 {
    let spam = SpamRouting::new(topo, ud);
    let procs: Vec<NodeId> = topo.processors().collect();
    let coordinator = procs[0];
    let participants: Vec<NodeId> = procs[1..].to_vec();
    let mut sim = NetworkSim::new(topo, spam, SimConfig::paper());
    for (i, &p) in participants.iter().enumerate() {
        sim.submit(MessageSpec::unicast(p, coordinator, 8).tag(i as u64))
            .unwrap();
    }
    let mut hook = SpamBarrier {
        coordinator,
        waiting: participants.len(),
        participants: participants.clone(),
        release_tag: 9_999,
    };
    let out = sim.run_with_hook(&mut hook);
    assert!(out.all_delivered());
    // Barrier time = release delivered to the last participant.
    out.messages
        .iter()
        .find(|m| m.spec.tag == 9_999)
        .and_then(|m| m.completed_at)
        .expect("release broadcast completed")
        .as_us_f64()
}

fn barrier_with_software_release(topo: &netgraph::Topology, ud: &UpDownLabeling) -> f64 {
    let router = baselines::UpDownUnicastRouting::new(topo, ud);
    let procs: Vec<NodeId> = topo.processors().collect();
    let coordinator = procs[0];
    let participants: Vec<NodeId> = procs[1..].to_vec();

    // Gather phase.
    let mut sim = NetworkSim::new(topo, router.clone(), SimConfig::paper());
    for (i, &p) in participants.iter().enumerate() {
        sim.submit(MessageSpec::unicast(p, coordinator, 8).tag(i as u64))
            .unwrap();
    }
    let gather = sim.run();
    assert!(gather.all_delivered());
    let gathered_at = gather
        .messages
        .iter()
        .map(|m| m.completed_at.unwrap())
        .max()
        .unwrap();

    // Release phase: binomial unicast multicast starting when the gather
    // finished.
    let mut um =
        baselines::UnicastMulticast::new(coordinator, &participants, 8, Duration::from_us(10))
            .with_tag(9_999);
    let mut sim = NetworkSim::new(topo, router, SimConfig::paper());
    for s in um.initial_sends(gathered_at) {
        sim.submit(s).unwrap();
    }
    let release = sim.run_with_hook(&mut um);
    assert!(release.all_delivered());
    gathered_at.as_us_f64() + um.makespan(&release).unwrap().as_us_f64()
}

fn main() {
    for switches in [32usize, 64, 128] {
        let topo = IrregularConfig::with_switches(switches).generate(7);
        let ud = UpDownLabeling::build(&topo, RootSelection::LowestId);
        let spam_us = barrier_with_spam(&topo, &ud);
        let soft_us = barrier_with_software_release(&topo, &ud);
        println!(
            "{switches:>4}-node barrier: SPAM release {spam_us:>7.2} µs | software release {soft_us:>7.2} µs | {:.1}x",
            soft_us / spam_us
        );
    }
    println!("\n(the gather half is identical in both; the release multicast is where");
    println!(" the single-phase worm removes the log2(d+1) startup chain)");
}
