//! A miniature Figure 3: mixed 90 % unicast / 10 % multicast traffic at
//! increasing arrival rates, showing latency independence from multicast
//! size until saturation.
//!
//! ```text
//! cargo run --example mixed_traffic --release
//! ```
//! (The full-scale figure is `cargo run -p spam-bench --bin fig3 --release`.)

use spam_net::prelude::*;

fn main() {
    let switches = 64;
    let messages = 1500;
    let topo = IrregularConfig::with_switches(switches).generate(3);
    let ud = UpDownLabeling::build(&topo, RootSelection::LowestId);
    let spam = SpamRouting::new(&topo, &ud);

    println!(
        "{switches}-node network, {messages} messages per point, 90% unicast / 10% multicast\n"
    );
    println!(
        "{:>10} | {:>12} {:>12} {:>12}",
        "rate /µs", "k=8 (µs)", "k=16 (µs)", "k=32 (µs)"
    );
    for rate in [0.005f64, 0.01, 0.02, 0.03, 0.04] {
        let mut row = format!("{rate:>10.3} |");
        for k in [8usize, 16, 32] {
            let stream = MixedTrafficConfig::figure3(rate, k, messages)
                .generate(&topo, 42)
                .expect("valid mixed-traffic config");
            let mut sim = NetworkSim::new(&topo, spam.clone(), SimConfig::paper());
            for spec in stream {
                sim.submit(spec).unwrap();
            }
            let out = sim.run();
            assert!(out.all_delivered(), "deadlock at rate {rate}, k {k}");
            let warmup = (messages / 10) as u64;
            let mean = out.mean_latency_us(|m| m.spec.tag >= warmup).unwrap();
            row.push_str(&format!(" {mean:>12.2}"));
        }
        println!("{row}");
    }
    println!("\n(columns nearly coincide: latency is largely independent of the");
    println!(" number of destinations per multicast — the Figure 3 observation)");
}
