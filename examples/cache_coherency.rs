//! Directory-based cache coherency — the paper's second motivating
//! application ("cache coherency in distributed shared-memory
//! architectures").
//!
//! On a write to a shared line, the home (directory) node must invalidate
//! every sharer and collect acknowledgements before granting ownership.
//! The invalidation fan-out is a multicast; the acks are unicasts. This
//! example measures the write-ownership latency with the invalidations
//! sent as
//!
//! 1. one SPAM multi-head worm, versus
//! 2. a sequence of unicasts from the directory (send_gap = one startup).
//!
//! ```text
//! cargo run --example cache_coherency --release
//! ```

use rand::seq::SliceRandom;
use rand::SeedableRng;
use spam_net::prelude::*;
use wormsim::{CompletionHook, MsgId};

const INVALIDATE_TAG: u64 = 100;
const ACK_TAG: u64 = 200;

/// Sharers acknowledge their invalidation back to the directory.
struct AckOnInvalidate {
    home: NodeId,
}

impl CompletionHook for AckOnInvalidate {
    fn on_complete(&mut self, _m: MsgId, spec: &MessageSpec, at: Time) -> Vec<MessageSpec> {
        if spec.tag == INVALIDATE_TAG {
            // Each destination of the invalidation acks with a short
            // unicast. (For the multicast case one completion fans out
            // all acks; per-destination arrival times differ by at most
            // the tail skew, which is nanoseconds here.)
            spec.dests
                .iter()
                .map(|&sharer| {
                    MessageSpec::unicast(sharer, self.home, 8)
                        .at(at)
                        .tag(ACK_TAG)
                })
                .collect()
        } else {
            Vec::new()
        }
    }
}

fn ownership_latency_spam(
    topo: &netgraph::Topology,
    ud: &UpDownLabeling,
    home: NodeId,
    sharers: &[NodeId],
) -> f64 {
    let spam = SpamRouting::new(topo, ud);
    let mut sim = NetworkSim::new(topo, spam, SimConfig::paper());
    sim.submit(MessageSpec::multicast(home, sharers.to_vec(), 16).tag(INVALIDATE_TAG))
        .unwrap();
    let mut hook = AckOnInvalidate { home };
    let out = sim.run_with_hook(&mut hook);
    assert!(out.all_delivered());
    // Ownership granted when the last ack arrives home.
    out.messages
        .iter()
        .filter(|m| m.spec.tag == ACK_TAG)
        .map(|m| m.completed_at.unwrap())
        .max()
        .unwrap()
        .as_us_f64()
}

fn ownership_latency_unicasts(
    topo: &netgraph::Topology,
    ud: &UpDownLabeling,
    home: NodeId,
    sharers: &[NodeId],
) -> f64 {
    let spam = SpamRouting::new(topo, ud); // same router; only the scheme differs
    let mut sim = NetworkSim::new(topo, spam, SimConfig::paper());
    // The directory serializes one invalidation send per startup period.
    for (i, &s) in sharers.iter().enumerate() {
        sim.submit(
            MessageSpec::unicast(home, s, 16)
                .at(Time::ZERO + Duration::from_us(10) * i as u64)
                .tag(INVALIDATE_TAG),
        )
        .unwrap();
    }
    let mut hook = AckOnInvalidate { home };
    let out = sim.run_with_hook(&mut hook);
    assert!(out.all_delivered());
    out.messages
        .iter()
        .filter(|m| m.spec.tag == ACK_TAG)
        .map(|m| m.completed_at.unwrap())
        .max()
        .unwrap()
        .as_us_f64()
}

fn main() {
    let topo = IrregularConfig::with_switches(64).generate(11);
    let ud = UpDownLabeling::build(&topo, RootSelection::LowestId);
    let procs: Vec<NodeId> = topo.processors().collect();
    let mut rng = rand::rngs::StdRng::seed_from_u64(5);

    println!("write-ownership latency (invalidate all sharers + collect acks):\n");
    println!(
        "{:>8} {:>14} {:>16} {:>8}",
        "sharers", "SPAM (µs)", "unicasts (µs)", "ratio"
    );
    for k in [2usize, 4, 8, 16, 32] {
        let home = procs[0];
        let mut sharers: Vec<NodeId> = procs.iter().copied().filter(|&p| p != home).collect();
        sharers.shuffle(&mut rng);
        sharers.truncate(k);
        let spam_us = ownership_latency_spam(&topo, &ud, home, &sharers);
        let ucast_us = ownership_latency_unicasts(&topo, &ud, home, &sharers);
        println!(
            "{k:>8} {spam_us:>14.2} {ucast_us:>16.2} {:>7.1}x",
            ucast_us / spam_us
        );
    }
    println!("\n(SPAM's invalidation cost is one startup regardless of sharer count;");
    println!(" serialized unicasts pay one startup per sharer)");
}
