//! Quickstart: build a paper-style irregular network, label it up*/down*,
//! and send one SPAM multicast through the flit-level simulator.
//!
//! ```text
//! cargo run --example quickstart --release
//! ```

use spam_net::prelude::*;

fn main() {
    // 1. A 64-switch NOW on a random integer lattice, one workstation per
    //    switch, 8-port switches (§4 of the paper).
    let topo = IrregularConfig::with_switches(64).generate(2024);
    topo.validate(8)
        .expect("generator respects the port budget");
    println!(
        "network: {} switches, {} processors, {} unidirectional channels",
        topo.num_switches(),
        topo.num_processors(),
        topo.num_channels()
    );

    // 2. Up*/down* labeling from a deterministic root.
    let ud = UpDownLabeling::build(&topo, RootSelection::LowestId);
    let (up_tree, up_cross, down_tree, down_cross) = ud.class_counts();
    println!(
        "labeling: root {}, channels = {up_tree} up-tree / {up_cross} up-cross / {down_tree} down-tree / {down_cross} down-cross",
        ud.root()
    );

    // 3. SPAM routing with the paper's selection policy.
    let spam = SpamRouting::new(&topo, &ud);

    // 4. One 16-destination multicast, 128 flits, in an idle network.
    let procs: Vec<NodeId> = topo.processors().collect();
    let src = procs[0];
    let dests: Vec<NodeId> = procs[1..17].to_vec();
    let lca = ud.lca_of(&dests).unwrap();
    println!("multicast: {src} -> 16 destinations, LCA {lca}");

    let mut sim = NetworkSim::new(&topo, spam, SimConfig::paper());
    sim.submit(MessageSpec::multicast(src, dests, 128)).unwrap();
    let out = sim.run();
    assert!(out.all_delivered());

    let lat = out.messages[0].latency().unwrap();
    println!(
        "latency: {:.2} µs (startup 10 µs + header route + 127-flit pipeline)",
        lat.as_us_f64()
    );
    println!(
        "counters: {} events, {} wire transfers, {} bubbles, {} flits delivered",
        out.counters.events,
        out.counters.wire_transfers,
        out.counters.bubbles_created,
        out.counters.flits_delivered
    );

    // 5. Compare with the software multicast lower bound (§4's argument).
    let bound = lower_bound::software_multicast_lower_bound(16, Duration::from_us(10));
    println!(
        "software lower bound for 16 destinations: {:.0} µs -> SPAM is {:.1}x faster",
        bound.as_us_f64(),
        bound.as_us_f64() / lat.as_us_f64()
    );
}
