//! Topology and labeling statistics: what the §4 network distribution
//! actually looks like, and how the spanning-tree root shapes it.
//!
//! ```text
//! cargo run --example topology_explorer --release
//! ```

use netgraph::algo;
use spam_net::prelude::*;

fn tree_depth(topo: &netgraph::Topology, ud: &UpDownLabeling) -> u32 {
    topo.nodes().map(|n| ud.level(n)).max().unwrap_or(0)
}

fn main() {
    println!("§4 irregular lattice networks (one processor per switch):\n");
    println!(
        "{:>6} {:>6} {:>7} {:>9} {:>10} {:>11} {:>11}",
        "seed", "sw", "links", "diameter", "tree-depth", "down-cross", "root"
    );
    for switches in [128usize, 256] {
        for seed in 0..3u64 {
            let topo = IrregularConfig::with_switches(switches).generate(seed);
            let ud = UpDownLabeling::build(&topo, RootSelection::LowestId);
            let (_, _, _, down_cross) = ud.class_counts();
            println!(
                "{seed:>6} {switches:>6} {:>7} {:>9} {:>10} {:>11} {:>11}",
                topo.num_channels() / 2,
                algo::switch_diameter(&topo),
                tree_depth(&topo, &ud),
                down_cross,
                ud.root().to_string(),
            );
        }
    }

    println!("\nroot-selection policies on one 128-switch network (seed 0):");
    let topo = IrregularConfig::with_switches(128).generate(0);
    println!(
        "{:>18} {:>6} {:>11} {:>13}",
        "policy", "root", "tree-depth", "root-degree"
    );
    for (name, sel) in [
        ("lowest-id", RootSelection::LowestId),
        ("max-degree", RootSelection::MaxDegree),
        ("min-eccentricity", RootSelection::MinEccentricity),
        ("random(7)", RootSelection::RandomSeeded(7)),
    ] {
        let ud = UpDownLabeling::build(&topo, sel);
        println!(
            "{name:>18} {:>6} {:>11} {:>13}",
            ud.root().to_string(),
            tree_depth(&topo, &ud),
            topo.degree(ud.root()),
        );
    }

    println!("\nregular topologies (§5) under the same machinery:");
    for (name, t) in [
        ("8x8 mesh", netgraph::gen::regular::mesh2d(8, 8)),
        ("8x8 torus", netgraph::gen::regular::torus2d(8, 8)),
        ("6-cube", netgraph::gen::regular::hypercube(6)),
    ] {
        let ud = UpDownLabeling::build(&t, RootSelection::MinEccentricity);
        let (_, _, _, dc) = ud.class_counts();
        println!(
            "  {name:<10} switches {:>3}, diameter {:>2}, tree depth {:>2}, down-cross channels {dc}",
            t.num_switches(),
            algo::switch_diameter(&t),
            tree_depth(&t, &ud),
        );
    }
}
