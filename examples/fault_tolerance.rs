//! Fault tolerance: kill a lattice region of a paper-style network,
//! reconfigure the survivors Autonet-style (relabel each component with a
//! fresh root), and multicast across the degraded network with SPAM.
//!
//! ```text
//! cargo run --example fault_tolerance --release
//! ```

use spam_net::prelude::*;

fn main() {
    // 1. A 64-switch NOW with its lattice layout (needed for spatially
    //    correlated faults: a dead region is a set of *adjacent* cells).
    let (topo, layout) = IrregularConfig::with_switches(64).generate_with_layout(2024);
    let ud = UpDownLabeling::build(&topo, RootSelection::LowestId);
    println!(
        "pristine: {} switches, {} channels, root {}",
        topo.num_switches(),
        topo.num_channels(),
        ud.root()
    );

    // 2. A region fault: one lattice neighborhood (radius 2) dies — think
    //    a failed rack or power zone — plus a couple of random link cuts.
    let mut plan = FaultModel::Region { radius: 2 }.sample(&topo, Some(&layout), 7);
    let cuts = FaultModel::IidLinks { rate: 0.05 }.sample(&topo, None, 7);
    plan.links = cuts.links;
    println!(
        "fault plan: {} dead switches (region), {} cut links",
        plan.switches.len(),
        plan.links.len()
    );

    // 3. Reconfigure: mask the dead hardware (node ids preserved), split
    //    into surviving components, rebuild the up*/down* labeling per
    //    component with root re-selection.
    let net = DegradedNetwork::build(&topo, &plan, Some(ud.root()));
    println!(
        "survivors: {} channels, {} component(s)",
        net.topo.num_channels(),
        net.components.len()
    );
    for (i, c) in net.components.iter().enumerate() {
        println!(
            "  component {i}: {} nodes, root {} {}",
            c.nodes.len(),
            c.root,
            if c.root == ud.root() {
                "(old root survived)"
            } else {
                "(re-selected)"
            }
        );
    }

    // 4. Broadcast to every *reachable* processor of the main component.
    //    Theorem 1 holds per component, so the worm still cannot deadlock.
    let main = net.largest().expect("network not annihilated");
    let procs = main.processors(&net.topo);
    let src = procs[0];
    let dests: Vec<NodeId> = procs[1..].to_vec();
    let spam = SpamRouting::new(&net.topo, &main.labeling);
    let mut sim = NetworkSim::new(&net.topo, spam, SimConfig::paper());
    sim.submit(MessageSpec::multicast(src, dests.clone(), 128))
        .unwrap();
    let out = sim.run();
    assert!(out.all_delivered(), "SPAM must survive reconfiguration");
    println!(
        "degraded broadcast: {} -> {} survivors in {:.2} µs (deadlock-free, single startup)",
        src,
        dests.len(),
        out.messages[0].latency().unwrap().as_us_f64()
    );

    // 5. The counter-example: a destination inside the dead zone is
    //    unreachable by *any* routing algorithm. The engine reports a
    //    typed routing error instead of crashing or spinning.
    let stranded = topo
        .processor_of(plan.switches[0])
        .expect("every switch hosts a processor");
    let spam = SpamRouting::new(&net.topo, &main.labeling);
    let mut sim = NetworkSim::new(&net.topo, spam, SimConfig::paper());
    sim.submit(MessageSpec::unicast(src, stranded, 128))
        .unwrap();
    let out = sim.run();
    assert!(!out.all_delivered());
    match out.error {
        Some(e) => println!("unreachable destination {stranded}: typed error \"{e}\""),
        None => println!("unreachable destination {stranded}: {:?}", out.deadlock),
    }
}
